//! The edge simulator: FIFO device compute → fading uplink → weighted
//! processor-sharing edge server, driven by a deterministic event queue.

use crate::cluster::Cluster;
use crate::engine::EventQueue;
use crate::faults::{FaultClass, FaultKind, FaultPlan};
use crate::metrics::{
    FaultClassStats, FaultMetrics, LatencyStats, RecoveryMetrics, SimReport, StreamAccum,
};
use crate::net::LinkModel;
use crate::recovery::{BreakerState, CircuitBreaker, HealthSnapshot, RecoveryConfig};
use crate::rng::SimRng;
use crate::task::{CompiledStream, RunTask};
use crate::time::SimTime;
use crate::tracelog::{FaultRecord, RunTrace, TaskRecord};
use crate::workload::ArrivalGen;
use scalpel_surgery::DegradeRung;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Simulation horizon and determinism knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Stop generating arrivals after this many simulated seconds
    /// (in-flight requests still drain).
    pub horizon_s: f64,
    /// Ignore requests arriving before this time (transient removal).
    pub warmup_s: f64,
    /// Master seed; all streams derive from it.
    pub seed: u64,
    /// Whether Rayleigh fading perturbs each transmission (off = planner's
    /// mean-rate world, useful for analytic-vs-sim validation).
    pub fading: bool,
    /// Fault schedule executed alongside the workload (empty = clean run).
    pub faults: FaultPlan,
    /// Closed-loop recovery policies (default: all off — a run with
    /// [`RecoveryConfig::none`] is bit-identical to the pre-recovery
    /// simulator: no extra events, no extra RNG draws).
    #[serde(default)]
    pub recovery: RecoveryConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            horizon_s: 30.0,
            warmup_s: 2.0,
            seed: 1,
            fading: true,
            faults: FaultPlan::none(),
            recovery: RecoveryConfig::none(),
        }
    }
}

/// Events of the edge simulation.
#[derive(Debug, Clone)]
enum Ev {
    /// Next request of `stream` arrives.
    Arrive { stream: usize },
    /// The request at the head of `device`'s compute unit finishes.
    /// Stale generations (device went down mid-service) are ignored.
    DeviceDone { device: usize, gen: u64 },
    /// The transmission at the head of `device`'s uplink finishes.
    /// Stale generations (AP outage re-queued the data) are ignored.
    TxDone { device: usize, gen: u64 },
    /// Re-examine server `server`'s processor-sharing state.
    ServerCheck { server: usize, gen: u64 },
    /// Execute fault event `idx` of the plan.
    Fault { idx: usize },
    /// Retry watchdog for request `req` on `device`'s uplink. Stale if the
    /// request has left the uplink or already retried (`attempt` mismatch).
    RetryTimeout {
        device: usize,
        req: u64,
        attempt: u32,
    },
    /// Emit a control-plane health snapshot and reschedule.
    Telemetry,
}

/// A request with its accumulated timing breakdown.
#[derive(Debug, Clone)]
struct InFlight {
    task: RunTask,
    device_wait: f64,
    device_service: f64,
    tx_time: f64,
    /// Unique per-run request id (retry-watchdog addressing).
    req: u64,
    /// Uplink attempts already timed out (0 = first attempt).
    attempts: u32,
    /// Hedged server override; `None` = the stream's primary server.
    target: Option<usize>,
    /// Degradation rung this request is completing through, if any.
    degrade_to: Option<DegradeRung>,
}

#[derive(Debug, Default)]
struct DeviceState {
    queue: VecDeque<InFlight>,
    /// The request currently computing (service end handled by DeviceDone).
    current: Option<InFlight>,
}

#[derive(Debug, Default)]
struct UplinkState {
    queue: VecDeque<InFlight>,
    current: Option<InFlight>,
}

#[derive(Debug)]
struct ActiveOnServer {
    flight: InFlight,
    remaining_flops: f64,
    weight: f64,
    entered: SimTime,
}

#[derive(Debug)]
struct ServerState {
    capacity_fps: f64,
    /// Nominal capacity; `capacity_fps` drops below it while throttled.
    base_fps: f64,
    active: Vec<ActiveOnServer>,
    last: SimTime,
    gen: u64,
    /// Seconds with ≥1 active request (for the utilization report).
    busy_s: f64,
}

impl ServerState {
    /// Apply processor sharing between `self.last` and `now`.
    fn advance(&mut self, now: SimTime) {
        let dt = now.secs_since(self.last);
        self.last = now;
        if dt <= 0.0 || self.active.is_empty() {
            return;
        }
        self.busy_s += dt;
        let total_w: f64 = self.active.iter().map(|a| a.weight).sum();
        for a in &mut self.active {
            let rate = self.capacity_fps * a.weight / total_w;
            a.remaining_flops -= dt * rate;
        }
    }

    /// Seconds until the next in-progress request completes.
    fn time_to_next_completion(&self) -> Option<f64> {
        if self.active.is_empty() {
            return None;
        }
        let total_w: f64 = self.active.iter().map(|a| a.weight).sum();
        self.active
            .iter()
            .map(|a| {
                let rate = self.capacity_fps * a.weight / total_w;
                (a.remaining_flops / rate).max(0.0)
            })
            .min_by(|x, y| x.partial_cmp(y).expect("finite"))
    }
}

/// The heterogeneous-edge discrete-event simulator.
pub struct EdgeSim {
    cluster: Cluster,
    streams: Vec<CompiledStream>,
    config: SimConfig,
}

impl EdgeSim {
    /// Build a simulator over a validated topology and compiled streams.
    pub fn new(
        cluster: Cluster,
        streams: Vec<CompiledStream>,
        config: SimConfig,
    ) -> Result<Self, String> {
        cluster.validate()?;
        for (i, s) in streams.iter().enumerate() {
            if s.id != i {
                return Err(format!("stream {i} has id {}", s.id));
            }
            if s.device >= cluster.devices.len() {
                return Err(format!("stream {i} references missing device {}", s.device));
            }
            if let Some(srv) = s.server {
                if srv >= cluster.servers.len() {
                    return Err(format!("stream {i} references missing server {srv}"));
                }
            }
            for &alt in &s.fallback_servers {
                if alt >= cluster.servers.len() {
                    return Err(format!(
                        "stream {i} references missing fallback server {alt}"
                    ));
                }
            }
            s.validate()?;
        }
        if config.horizon_s <= config.warmup_s {
            return Err("horizon must exceed warmup".into());
        }
        config.faults.validate(&cluster)?;
        config.recovery.validate()?;
        Ok(Self {
            cluster,
            streams,
            config,
        })
    }

    /// Run to completion and report measured statistics.
    pub fn run(&self) -> SimReport {
        Runner::new(self).run().0
    }

    /// Run to completion, additionally returning one [`TaskRecord`] per
    /// measured completion (in completion order).
    pub fn run_traced(&self) -> (SimReport, Vec<TaskRecord>) {
        let (report, trace) = self.run_logged();
        (report, trace.tasks)
    }

    /// Run to completion with full event logging: per-completion timing
    /// records plus one [`FaultRecord`] per executed fault event.
    pub fn run_logged(&self) -> (SimReport, RunTrace) {
        let mut runner = Runner::new(self);
        runner.trace = Some(Vec::new());
        runner.fault_trace = Some(Vec::new());
        runner.run()
    }
}

/// Robustness counters accumulated while faults execute.
#[derive(Debug, Default)]
struct FaultAccum {
    injected: usize,
    applied: usize,
    stranded: usize,
    stalled: usize,
    completions_during: usize,
    misses_during: usize,
    recovery_sum_s: f64,
    recoveries: usize,
    per_injected: [usize; 4],
    per_applied: [usize; 4],
    per_stranded: [usize; 4],
    per_misses: [usize; 4],
}

impl FaultAccum {
    fn finish(self) -> FaultMetrics {
        FaultMetrics {
            injected: self.injected,
            applied: self.applied,
            stranded: self.stranded,
            stalled: self.stalled,
            completions_during_fault: self.completions_during,
            misses_during_fault: self.misses_during,
            recoveries: self.recoveries,
            mean_recovery_s: if self.recoveries > 0 {
                self.recovery_sum_s / self.recoveries as f64
            } else {
                0.0
            },
            per_class: FaultClass::ALL
                .iter()
                .map(|&class| {
                    let i = class.index();
                    FaultClassStats {
                        class,
                        injected: self.per_injected[i],
                        applied: self.per_applied[i],
                        stranded: self.per_stranded[i],
                        misses_during: self.per_misses[i],
                    }
                })
                .collect(),
        }
    }
}

/// Internal mutable run state (kept off `EdgeSim` so `run` is `&self` and
/// sweeps can share one immutable setup across threads).
struct Runner<'a> {
    sim: &'a EdgeSim,
    queue: EventQueue<Ev>,
    devices: Vec<DeviceState>,
    uplinks: Vec<UplinkState>,
    servers: Vec<ServerState>,
    links: Vec<LinkModel>,
    arrival_gens: Vec<ArrivalGen>,
    arrival_rngs: Vec<SimRng>,
    difficulty_rng: SimRng,
    fading_rng: SimRng,
    accums: Vec<StreamAccum>,
    generated: usize,
    horizon: SimTime,
    warmup: SimTime,
    trace: Option<Vec<TaskRecord>>,
    // --- fault-injection state ---
    /// Whether each device is powered on.
    device_up: Vec<bool>,
    /// Generation counter invalidating in-flight `DeviceDone` events.
    dev_gen: Vec<u64>,
    /// Whether each AP's radio is up.
    ap_up: Vec<bool>,
    /// Effective-rate multiplier per AP (1.0 = nominal).
    ap_bw_factor: Vec<f64>,
    /// Generation counter invalidating in-flight `TxDone` events.
    tx_gen: Vec<u64>,
    /// Whether each stream has an `Arrive` event in the queue (suppressed
    /// while its device is down; restarted on `DeviceUp`).
    arrival_pending: Vec<bool>,
    /// Stream ids hosted on each device.
    streams_by_device: Vec<Vec<usize>>,
    /// Currently-active fault count per class (attribution of misses).
    active_faults: [usize; 4],
    /// Outage start times, for recovery-time accounting.
    device_down_at: Vec<Option<SimTime>>,
    ap_down_at: Vec<Option<SimTime>>,
    ap_degraded_at: Vec<Option<SimTime>>,
    server_throttled_at: Vec<Option<SimTime>>,
    fa: FaultAccum,
    fault_trace: Option<Vec<FaultRecord>>,
    // --- recovery state ---
    /// Whether any recovery layer is on (gates every recovery code path).
    recovery_active: bool,
    /// Next unique request id.
    next_req: u64,
    /// Per-server breakers (present iff `recovery.breakers` is set).
    srv_breakers: Option<Vec<CircuitBreaker>>,
    /// Per-AP breakers (present iff `recovery.breakers` is set).
    ap_breakers: Option<Vec<CircuitBreaker>>,
    ra: RecoveryAccum,
    /// Outstanding local-finish degradation work per device, seconds.
    /// The ladder is load-aware: committed-but-unfinished suffix work
    /// shrinks the slack offered to the next faller, so an overloaded
    /// device falls to forced exits (zero extra compute) instead of
    /// queueing unbounded local work that churn would strand wholesale.
    degrade_backlog_s: Vec<f64>,
    /// Telemetry snapshots, in epoch order.
    health: Vec<HealthSnapshot>,
    /// Cumulative measured completions / misses (telemetry deltas).
    meas_completed: usize,
    meas_misses: usize,
    /// Counter values at the previous telemetry snapshot.
    last_snap: SnapBase,
}

/// Counter baseline of the previous telemetry epoch.
#[derive(Debug, Default, Clone, Copy)]
struct SnapBase {
    completed: usize,
    misses: usize,
    timeouts: usize,
    degraded: usize,
    shed: usize,
}

/// Recovery counters accumulated during a run.
#[derive(Debug, Default)]
struct RecoveryAccum {
    timeouts: usize,
    retries: usize,
    hedges: usize,
    degraded: usize,
    degraded_on_time: usize,
    shed: usize,
    /// Accuracy the degraded requests' nominal paths would have credited.
    nominal_acc_sum: f64,
    /// Accuracy actually credited to degraded completions.
    degraded_acc_sum: f64,
}

impl<'a> Runner<'a> {
    fn new(sim: &'a EdgeSim) -> Self {
        let n_dev = sim.cluster.devices.len();
        let n_ap = sim.cluster.aps.len();
        let n_srv = sim.cluster.servers.len();
        let devices = (0..n_dev).map(|_| DeviceState::default()).collect();
        let uplinks = (0..n_dev).map(|_| UplinkState::default()).collect();
        let servers = sim
            .cluster
            .servers
            .iter()
            .map(|s| ServerState {
                capacity_fps: s.proc.flops_per_sec,
                base_fps: s.proc.flops_per_sec,
                active: Vec::new(),
                last: SimTime::ZERO,
                gen: 0,
                busy_s: 0.0,
            })
            .collect();
        let links = (0..n_dev).map(|d| sim.cluster.link(d)).collect();
        let mut streams_by_device: Vec<Vec<usize>> = vec![Vec::new(); n_dev];
        for (i, s) in sim.streams.iter().enumerate() {
            streams_by_device[s.device].push(i);
        }
        let seed = sim.config.seed;
        Self {
            sim,
            queue: EventQueue::new(),
            devices,
            uplinks,
            servers,
            links,
            arrival_gens: sim.streams.iter().map(|s| s.arrivals.generator()).collect(),
            arrival_rngs: (0..sim.streams.len())
                .map(|i| SimRng::new(seed, 1000 + i as u64))
                .collect(),
            difficulty_rng: SimRng::new(seed, 1),
            fading_rng: SimRng::new(seed, 2),
            accums: (0..sim.streams.len())
                .map(|_| StreamAccum::default())
                .collect(),
            generated: 0,
            horizon: SimTime::from_secs_f64(sim.config.horizon_s),
            warmup: SimTime::from_secs_f64(sim.config.warmup_s),
            trace: None,
            device_up: vec![true; n_dev],
            dev_gen: vec![0; n_dev],
            ap_up: vec![true; n_ap],
            ap_bw_factor: vec![1.0; n_ap],
            tx_gen: vec![0; n_dev],
            arrival_pending: vec![false; sim.streams.len()],
            streams_by_device,
            active_faults: [0; 4],
            device_down_at: vec![None; n_dev],
            ap_down_at: vec![None; n_ap],
            ap_degraded_at: vec![None; n_ap],
            server_throttled_at: vec![None; n_srv],
            fa: FaultAccum::default(),
            fault_trace: None,
            recovery_active: sim.config.recovery.is_active(),
            next_req: 0,
            srv_breakers: sim
                .config
                .recovery
                .breakers
                .as_ref()
                .map(|b| (0..n_srv).map(|_| CircuitBreaker::new(b.clone())).collect()),
            ap_breakers: sim
                .config
                .recovery
                .breakers
                .as_ref()
                .map(|b| (0..n_ap).map(|_| CircuitBreaker::new(b.clone())).collect()),
            ra: RecoveryAccum::default(),
            degrade_backlog_s: vec![0.0; n_dev],
            health: Vec::new(),
            meas_completed: 0,
            meas_misses: 0,
            last_snap: SnapBase::default(),
        }
    }

    fn run(mut self) -> (SimReport, RunTrace) {
        // Seed the first arrival of every stream.
        for i in 0..self.sim.streams.len() {
            let gap = self.arrival_gens[i].next_gap(&mut self.arrival_rngs[i]);
            self.arrival_pending[i] = true;
            self.queue
                .schedule(SimTime::from_secs_f64(gap), Ev::Arrive { stream: i });
        }
        // Schedule the fault plan as first-class events.
        for (idx, fe) in self.sim.config.faults.events.iter().enumerate() {
            self.queue
                .schedule(SimTime::from_secs_f64(fe.at_s), Ev::Fault { idx });
        }
        // First control-plane telemetry epoch, if enabled.
        let epoch = self.sim.config.recovery.telemetry_epoch_s;
        if epoch > 0.0 {
            self.queue
                .schedule(SimTime::from_secs_f64(epoch), Ev::Telemetry);
        }
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Ev::Arrive { stream } => self.on_arrive(now, stream),
                Ev::DeviceDone { device, gen } => self.on_device_done(now, device, gen),
                Ev::TxDone { device, gen } => self.on_tx_done(now, device, gen),
                Ev::ServerCheck { server, gen } => self.on_server_check(now, server, gen),
                Ev::Fault { idx } => self.on_fault(now, idx),
                Ev::RetryTimeout {
                    device,
                    req,
                    attempt,
                } => self.on_retry_timeout(now, device, req, attempt),
                Ev::Telemetry => self.on_telemetry(now),
            }
        }
        self.finish()
    }

    fn measured(&self, arrival: SimTime) -> bool {
        arrival >= self.warmup && arrival < self.horizon
    }

    fn on_arrive(&mut self, now: SimTime, stream: usize) {
        self.arrival_pending[stream] = false;
        if now >= self.horizon {
            return; // stop generating; the system drains
        }
        let s = &self.sim.streams[stream];
        if !self.device_up[s.device] {
            // The device is away: its arrival process pauses here and is
            // restarted by the matching DeviceUp event.
            return;
        }
        // Pre-sample the exit decision from the input's latent difficulty.
        let u = self.difficulty_rng.open01();
        let exit = s.behavior.sample_exit(u);
        let accuracy = match exit {
            Some(i) => s.acc_at_exit[i],
            None => s.acc_full,
        };
        if self.measured(now) {
            self.generated += 1;
        }
        let req = self.next_req;
        self.next_req += 1;
        let flight = InFlight {
            task: RunTask {
                stream,
                arrival: now,
                exit,
                accuracy,
            },
            device_wait: 0.0,
            device_service: 0.0,
            tx_time: 0.0,
            req,
            attempts: 0,
            target: None,
            degrade_to: None,
        };
        let dev = s.device;
        self.devices[dev].queue.push_back(flight);
        self.maybe_start_device(now, dev);
        // Schedule the next arrival.
        let gap = self.arrival_gens[stream].next_gap(&mut self.arrival_rngs[stream]);
        self.arrival_pending[stream] = true;
        self.queue
            .schedule(now.after_secs(gap), Ev::Arrive { stream });
    }

    fn maybe_start_device(&mut self, now: SimTime, device: usize) {
        if !self.device_up[device] || self.devices[device].current.is_some() {
            return;
        }
        let Some(mut flight) = self.devices[device].queue.pop_front() else {
            return;
        };
        let s = &self.sim.streams[flight.task.stream];
        let service = if let Some(rung) = &flight.degrade_to {
            // Local-finish degradation: the suffix beyond the prefix the
            // device already ran.
            rung.extra_device_s
        } else {
            match flight.task.exit {
                Some(i) => s.device_time_to_exit[i],
                None => s.device_full_time,
            }
        };
        if flight.degrade_to.is_some() {
            flight.device_service += service;
        } else {
            flight.device_wait = now.secs_since(flight.task.arrival);
            flight.device_service = service;
        }
        self.devices[device].current = Some(flight);
        self.dev_gen[device] += 1;
        let gen = self.dev_gen[device];
        self.queue
            .schedule(now.after_secs(service), Ev::DeviceDone { device, gen });
    }

    fn on_device_done(&mut self, now: SimTime, device: usize, gen: u64) {
        if gen != self.dev_gen[device] {
            return; // the device went down mid-service; the work is gone
        }
        let flight = self.devices[device]
            .current
            .take()
            .expect("DeviceDone without a running request");
        let s = &self.sim.streams[flight.task.stream];
        if let Some(rung) = &flight.degrade_to {
            // A local-finish degradation just completed its suffix; its
            // committed work leaves the ladder's backlog estimate.
            self.degrade_backlog_s[device] =
                (self.degrade_backlog_s[device] - rung.extra_device_s).max(0.0);
            self.complete_degraded(now, flight);
        } else if flight.task.exit.is_some() || s.server.is_none() {
            // Completed on the device (early exit, or a device-only plan).
            self.complete(now, flight, 0.0);
        } else if self.recovery_active {
            self.route_offload(now, flight, device);
        } else {
            self.uplinks[device].queue.push_back(flight);
            self.maybe_start_tx(now, device);
        }
        self.maybe_start_device(now, device);
    }

    /// Recovery-aware offload admission: check path health (breakers),
    /// hedge to a fallback server, test deadline feasibility, and either
    /// queue on the uplink with a retry watchdog or fall down the
    /// degradation ladder.
    fn route_offload(&mut self, now: SimTime, mut flight: InFlight, device: usize) {
        let sim = self.sim;
        let s = &sim.streams[flight.task.stream];
        let cfg = &sim.config.recovery;
        let primary = s.server.expect("offloaded stream has a server");
        let ap = sim.cluster.devices[device].ap;
        let now_s = now.as_secs_f64();
        let slack = s.deadline_s - now.secs_since(flight.task.arrival);

        // The shared uplink is the only path off the device: an open AP
        // breaker fails the request over to the degradation ladder.
        if let Some(ap_brk) = self.ap_breakers.as_mut() {
            if !ap_brk[ap].try_acquire(now_s) {
                self.fall_back(now, flight, device);
                return;
            }
        }
        // Pick a server: the primary first, then (when hedging) each
        // fallback in preference order. A candidate is skipped when its
        // breaker refuses traffic, or when even the queue-free nominal
        // path through it cannot meet the deadline (a guaranteed miss —
        // degrading trades doomed network work for a local completion).
        let mut target = None;
        for c in std::iter::once(primary).chain(
            if cfg.hedge {
                s.fallback_servers.as_slice()
            } else {
                &[]
            }
            .iter()
            .copied(),
        ) {
            if cfg.degrade && self.nominal_path_estimate(flight.task.stream, device, c) > slack {
                continue;
            }
            if let Some(srv_brk) = self.srv_breakers.as_mut() {
                if !srv_brk[c].try_acquire(now_s) {
                    continue;
                }
            }
            target = Some(c);
            break;
        }
        let Some(target) = target else {
            self.fall_back(now, flight, device);
            return;
        };
        if target != primary {
            self.ra.hedges += 1;
        }
        flight.target = Some(target);
        if let Some(rp) = &cfg.retry {
            let timeout = rp.timeout_s(flight.attempts, slack);
            self.queue.schedule(
                now.after_secs(timeout),
                Ev::RetryTimeout {
                    device,
                    req: flight.req,
                    attempt: flight.attempts,
                },
            );
        }
        self.uplinks[device].queue.push_back(flight);
        self.maybe_start_tx(now, device);
    }

    /// Queue-free best-case seconds for `stream`'s offload path through
    /// `target`, using only device-visible information: the nominal link
    /// rate scaled by the AP's advertised PHY rate (`ap_bw_factor`), and
    /// the server's *catalog* capacity. Deliberately blind to AP outages
    /// and server throttles — detecting those is the job of retry
    /// timeouts and breakers, not an oracle. No fading draw: this
    /// consumes no randomness.
    fn nominal_path_estimate(&self, stream: usize, device: usize, target: usize) -> f64 {
        let s = &self.sim.streams[stream];
        let ap = self.sim.cluster.devices[device].ap;
        let air = self.links[device].tx_seconds(s.tx_bytes, s.bandwidth_share, 1.0)
            / self.ap_bw_factor[ap];
        air + self.sim.cluster.aps[ap].rtt_s / 2.0
            + s.edge_flops / self.servers[target].base_fps.max(1.0)
    }

    /// Last resort once the offload path is given up on: degrade if a rung
    /// exists, shed if policy allows, otherwise park the request back on
    /// the uplink with no further watchdogs (the no-recovery behavior).
    fn fall_back(&mut self, now: SimTime, mut flight: InFlight, device: usize) {
        let sim = self.sim;
        let cfg = &sim.config.recovery;
        let s = &sim.streams[flight.task.stream];
        if cfg.degrade {
            let slack = s.deadline_s - now.secs_since(flight.task.arrival);
            // Load-aware rung choice. Local-finish suffixes often dwarf
            // the deadline slack (the `cheapest()` last resort exists
            // precisely because completing late beats stranding), so an
            // unconditional ladder turns device queues into piles of
            // slow local work that a later device-churn event strands
            // wholesale — recovery would then lose *more* requests than
            // doing nothing. The ladder therefore only commits device
            // seconds on an *idle* device (empty queue, no outstanding
            // suffix); a busy one gets a zero-cost forced exit when the
            // stream has one, and otherwise falls through to shedding or
            // parking below.
            let idle =
                self.devices[device].queue.is_empty() && self.degrade_backlog_s[device] <= 0.0;
            let avail = if idle { slack } else { 0.0 };
            let rung = s
                .degrade
                .best_within(avail)
                .or_else(|| if idle { s.degrade.cheapest() } else { None })
                .cloned();
            if let Some(rung) = rung {
                let local = rung.extra_device_s > 0.0;
                flight.degrade_to = Some(rung.clone());
                if local {
                    self.degrade_backlog_s[device] += rung.extra_device_s;
                    self.devices[device].queue.push_back(flight);
                    self.maybe_start_device(now, device);
                } else {
                    // Forced exit: the head output already exists.
                    self.complete_degraded(now, flight);
                }
                return;
            }
        }
        if cfg.shed_on_open {
            if self.measured(flight.task.arrival) {
                self.ra.shed += 1;
            }
            return;
        }
        self.uplinks[device].queue.push_back(flight);
        self.maybe_start_tx(now, device);
    }

    /// Account a degraded completion (forced exit or local finish).
    fn complete_degraded(&mut self, now: SimTime, flight: InFlight) {
        if !self.measured(flight.task.arrival) {
            return;
        }
        let rung = flight
            .degrade_to
            .as_ref()
            .expect("degraded completion carries its rung");
        let s = &self.sim.streams[flight.task.stream];
        self.ra.degraded += 1;
        if now.secs_since(flight.task.arrival) <= s.deadline_s {
            self.ra.degraded_on_time += 1;
        }
        self.ra.nominal_acc_sum += flight.task.accuracy;
        self.ra.degraded_acc_sum += rung.accuracy;
    }

    /// Retry watchdog: if the request is still sitting on the uplink with
    /// the same attempt count, the attempt has timed out — cancel it, feed
    /// the AP breaker, and retry or fall back.
    fn on_retry_timeout(&mut self, now: SimTime, device: usize, req: u64, attempt: u32) {
        let Some(rp) = self.sim.config.recovery.retry.clone() else {
            return;
        };
        let now_s = now.as_secs_f64();
        let ap = self.sim.cluster.devices[device].ap;
        let in_current = self.uplinks[device]
            .current
            .as_ref()
            .is_some_and(|f| f.req == req && f.attempts == attempt);
        let (mut flight, pos) = if in_current {
            self.tx_gen[device] += 1; // cancel the pending TxDone
            let mut f = self.uplinks[device].current.take().expect("checked above");
            f.tx_time = 0.0;
            (f, 0)
        } else {
            let Some(pos) = self.uplinks[device]
                .queue
                .iter()
                .position(|f| f.req == req && f.attempts == attempt)
            else {
                return; // stale: completed, stranded, or already retried
            };
            let f = self.uplinks[device]
                .queue
                .remove(pos)
                .expect("position just found");
            (f, pos)
        };
        self.ra.timeouts += 1;
        if let Some(b) = self.ap_breakers.as_mut() {
            b[ap].record_failure(now_s);
        }
        flight.attempts += 1;
        if flight.attempts > rp.max_retries {
            self.fall_back(now, flight, device);
        } else {
            if in_current {
                self.ra.retries += 1;
            }
            let s = &self.sim.streams[flight.task.stream];
            let slack = s.deadline_s - now.secs_since(flight.task.arrival);
            let timeout = rp.timeout_s(flight.attempts, slack);
            self.queue.schedule(
                now.after_secs(timeout),
                Ev::RetryTimeout {
                    device,
                    req,
                    attempt: flight.attempts,
                },
            );
            // A cancelled transmission restarts at the queue head; a
            // merely-queued request keeps its place.
            self.uplinks[device].queue.insert(pos, flight);
        }
        self.maybe_start_tx(now, device);
    }

    /// Emit one control-plane health snapshot and schedule the next epoch.
    fn on_telemetry(&mut self, now: SimTime) {
        let open = |brks: &Option<Vec<CircuitBreaker>>| -> Vec<bool> {
            brks.as_ref()
                .map(|v| v.iter().map(|b| b.state() == BreakerState::Open).collect())
                .unwrap_or_default()
        };
        self.health.push(HealthSnapshot {
            at_s: now.as_secs_f64(),
            completions: self.meas_completed - self.last_snap.completed,
            slo_misses: self.meas_misses - self.last_snap.misses,
            timeouts: self.ra.timeouts - self.last_snap.timeouts,
            degraded: self.ra.degraded - self.last_snap.degraded,
            shed: self.ra.shed - self.last_snap.shed,
            server_open: open(&self.srv_breakers),
            ap_open: open(&self.ap_breakers),
        });
        self.last_snap = SnapBase {
            completed: self.meas_completed,
            misses: self.meas_misses,
            timeouts: self.ra.timeouts,
            degraded: self.ra.degraded,
            shed: self.ra.shed,
        };
        let epoch = self.sim.config.recovery.telemetry_epoch_s;
        if now < self.horizon {
            self.queue.schedule(now.after_secs(epoch), Ev::Telemetry);
        }
    }

    fn maybe_start_tx(&mut self, now: SimTime, device: usize) {
        let ap = self.sim.cluster.devices[device].ap;
        if !self.device_up[device] || !self.ap_up[ap] {
            return; // the radio is dark: data waits in the uplink queue
        }
        if self.uplinks[device].current.is_some() {
            return;
        }
        let Some(mut flight) = self.uplinks[device].queue.pop_front() else {
            return;
        };
        let s = &self.sim.streams[flight.task.stream];
        let fading = if self.sim.config.fading {
            self.fading_rng.fading_power()
        } else {
            1.0
        };
        let link = &self.links[device];
        let rtt = self.sim.cluster.aps[ap].rtt_s;
        // A degraded link stretches airtime by 1/factor (effective-rate
        // collapse); propagation (rtt) is unaffected.
        let air = link.tx_seconds(s.tx_bytes, s.bandwidth_share, fading) / self.ap_bw_factor[ap];
        let tx = air + rtt / 2.0;
        flight.tx_time = tx;
        self.uplinks[device].current = Some(flight);
        self.tx_gen[device] += 1;
        let gen = self.tx_gen[device];
        self.queue
            .schedule(now.after_secs(tx), Ev::TxDone { device, gen });
    }

    fn on_tx_done(&mut self, now: SimTime, device: usize, gen: u64) {
        if gen != self.tx_gen[device] {
            return; // superseded: an AP outage re-queued this transmission
        }
        let flight = self.uplinks[device]
            .current
            .take()
            .expect("TxDone without a transmission");
        if let Some(b) = self.ap_breakers.as_mut() {
            // The uplink delivered: the AP is healthy.
            b[self.sim.cluster.devices[device].ap].record_success();
        }
        let s = &self.sim.streams[flight.task.stream];
        let server = flight
            .target
            .unwrap_or_else(|| s.server.expect("offloaded request has a server"));
        let srv = &mut self.servers[server];
        srv.advance(now);
        srv.active.push(ActiveOnServer {
            flight,
            remaining_flops: s.edge_flops.max(1.0),
            weight: s.compute_weight,
            entered: now,
        });
        self.reschedule_server(now, server);
        self.maybe_start_tx(now, device);
    }

    fn reschedule_server(&mut self, now: SimTime, server: usize) {
        let srv = &mut self.servers[server];
        srv.gen += 1;
        if let Some(dt) = srv.time_to_next_completion() {
            let gen = srv.gen;
            // +1 ns: SimTime floors to nanoseconds, so without the nudge the
            // check can fire marginally *early*, leave a sub-nanosecond
            // residue of work, and respawn itself at +0 ns forever.
            let at = now.after_secs(dt) + SimTime::from_nanos(1);
            self.queue.schedule(at, Ev::ServerCheck { server, gen });
        }
    }

    fn on_server_check(&mut self, now: SimTime, server: usize, gen: u64) {
        if self.servers[server].gen != gen {
            return; // superseded by a later arrival/departure
        }
        self.servers[server].advance(now);
        // Complete everything that has (numerically) finished.
        let mut done = Vec::new();
        let srv = &mut self.servers[server];
        // Anything within one nanosecond of work at full capacity counts as
        // finished (floating-point + fixed-point-time slop).
        let eps = (srv.capacity_fps * 1e-9).max(1.0);
        let mut i = 0;
        while i < srv.active.len() {
            if srv.active[i].remaining_flops <= eps {
                done.push(srv.active.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for a in done {
            let edge_time = now.secs_since(a.entered);
            self.complete(now, a.flight, edge_time);
        }
        self.reschedule_server(now, server);
    }

    /// Execute fault event `idx` of the plan. Redundant events (e.g. a
    /// `DeviceDown` on an already-down device) are counted as injected but
    /// not applied, so arbitrary event sequences stay well-defined.
    fn on_fault(&mut self, now: SimTime, idx: usize) {
        let kind = self.sim.config.faults.events[idx].kind.clone();
        let class = kind.class();
        let ci = class.index();
        self.fa.injected += 1;
        self.fa.per_injected[ci] += 1;
        let mut stranded_here = 0usize;
        let applied = match kind.clone() {
            FaultKind::DeviceDown { device } => {
                if self.device_up[device] {
                    self.device_up[device] = false;
                    self.device_down_at[device] = Some(now);
                    self.active_faults[ci] += 1;
                    stranded_here = self.strand_device(device, class);
                    true
                } else {
                    false
                }
            }
            FaultKind::DeviceUp { device } => {
                if !self.device_up[device] {
                    self.device_up[device] = true;
                    if let Some(t) = self.device_down_at[device].take() {
                        self.record_recovery(now, t);
                    }
                    self.active_faults[ci] -= 1;
                    self.resume_device_arrivals(now, device);
                    true
                } else {
                    false
                }
            }
            FaultKind::ApDown { ap } => {
                if self.ap_up[ap] {
                    self.ap_up[ap] = false;
                    self.ap_down_at[ap] = Some(now);
                    self.active_faults[ci] += 1;
                    // In-flight transmissions are re-queued, not lost: the
                    // data survives on the device and retransmits on ApUp.
                    for dev in self.sim.cluster.devices_on_ap(ap) {
                        if let Some(flight) = self.uplinks[dev].current.take() {
                            self.tx_gen[dev] += 1; // cancel the pending TxDone
                            self.uplinks[dev].queue.push_front(flight);
                        }
                    }
                    true
                } else {
                    false
                }
            }
            FaultKind::ApUp { ap } => {
                if !self.ap_up[ap] {
                    self.ap_up[ap] = true;
                    if let Some(t) = self.ap_down_at[ap].take() {
                        self.record_recovery(now, t);
                    }
                    self.active_faults[ci] -= 1;
                    for dev in self.sim.cluster.devices_on_ap(ap) {
                        self.maybe_start_tx(now, dev);
                    }
                    true
                } else {
                    false
                }
            }
            FaultKind::LinkDegrade { ap, factor } => {
                if (self.ap_bw_factor[ap] - factor).abs() > f64::EPSILON {
                    if self.ap_bw_factor[ap] >= 1.0 {
                        // Entering the degraded state (vs. re-degrading).
                        self.ap_degraded_at[ap] = Some(now);
                        self.active_faults[ci] += 1;
                    }
                    self.ap_bw_factor[ap] = factor;
                    true
                } else {
                    false
                }
            }
            FaultKind::LinkRestore { ap } => {
                if self.ap_bw_factor[ap] < 1.0 {
                    self.ap_bw_factor[ap] = 1.0;
                    if let Some(t) = self.ap_degraded_at[ap].take() {
                        self.record_recovery(now, t);
                    }
                    self.active_faults[ci] -= 1;
                    true
                } else {
                    false
                }
            }
            FaultKind::ServerThrottle { server, factor } => {
                let target = self.servers[server].base_fps * factor;
                if (self.servers[server].capacity_fps - target).abs() > 1e-9 {
                    if self.servers[server].capacity_fps >= self.servers[server].base_fps {
                        self.server_throttled_at[server] = Some(now);
                        self.active_faults[ci] += 1;
                    }
                    // Settle processor sharing at the old rate first, then
                    // continue in-progress work at the degraded one.
                    self.servers[server].advance(now);
                    self.servers[server].capacity_fps = target;
                    self.reschedule_server(now, server);
                    true
                } else {
                    false
                }
            }
            FaultKind::ServerRestore { server } => {
                if self.servers[server].capacity_fps < self.servers[server].base_fps {
                    self.servers[server].advance(now);
                    self.servers[server].capacity_fps = self.servers[server].base_fps;
                    if let Some(t) = self.server_throttled_at[server].take() {
                        self.record_recovery(now, t);
                    }
                    self.active_faults[ci] -= 1;
                    self.reschedule_server(now, server);
                    true
                } else {
                    false
                }
            }
        };
        if applied {
            self.fa.applied += 1;
            self.fa.per_applied[ci] += 1;
        }
        if let Some(log) = &mut self.fault_trace {
            log.push(FaultRecord {
                at_s: now.as_secs_f64(),
                kind,
                applied,
                stranded: stranded_here,
            });
        }
    }

    /// Drop everything the departing device was holding: queued and
    /// in-service compute, plus data waiting on (or in) its uplink. Work
    /// its streams already handed to an edge server still completes there.
    /// Returns the number of *measured* requests stranded.
    fn strand_device(&mut self, device: usize, class: FaultClass) -> usize {
        let mut flights: Vec<InFlight> = Vec::new();
        self.dev_gen[device] += 1; // invalidate any pending DeviceDone
        self.tx_gen[device] += 1; // invalidate any pending TxDone
        if let Some(f) = self.devices[device].current.take() {
            flights.push(f);
        }
        flights.extend(self.devices[device].queue.drain(..));
        if let Some(f) = self.uplinks[device].current.take() {
            flights.push(f);
        }
        flights.extend(self.uplinks[device].queue.drain(..));
        for f in &flights {
            if let Some(rung) = &f.degrade_to {
                self.degrade_backlog_s[device] =
                    (self.degrade_backlog_s[device] - rung.extra_device_s).max(0.0);
            }
        }
        let stranded = flights
            .iter()
            .filter(|f| self.measured(f.task.arrival))
            .count();
        self.fa.stranded += stranded;
        self.fa.per_stranded[class.index()] += stranded;
        stranded
    }

    /// Restart the arrival process of every stream on a returning device.
    fn resume_device_arrivals(&mut self, now: SimTime, device: usize) {
        if now >= self.horizon {
            return; // past the generation window: nothing to resume
        }
        for k in 0..self.streams_by_device[device].len() {
            let stream = self.streams_by_device[device][k];
            if !self.arrival_pending[stream] {
                let gap = self.arrival_gens[stream].next_gap(&mut self.arrival_rngs[stream]);
                self.arrival_pending[stream] = true;
                self.queue
                    .schedule(now.after_secs(gap), Ev::Arrive { stream });
            }
        }
    }

    fn record_recovery(&mut self, now: SimTime, since: SimTime) {
        self.fa.recovery_sum_s += now.secs_since(since);
        self.fa.recoveries += 1;
    }

    fn complete(&mut self, now: SimTime, flight: InFlight, edge_time: f64) {
        let sim = self.sim;
        let s = &sim.streams[flight.task.stream];
        let latency = now.secs_since(flight.task.arrival);
        if flight.tx_time > 0.0 {
            // Offloaded outcome feeds the target server's health window
            // (for all requests, measured or not — runtime health tracking
            // does not know about measurement windows).
            if let Some(brk) = self.srv_breakers.as_mut() {
                let target = flight
                    .target
                    .unwrap_or_else(|| s.server.expect("offloaded request has a server"));
                if latency <= s.deadline_s {
                    brk[target].record_success();
                } else {
                    brk[target].record_failure(now.as_secs_f64());
                }
            }
        }
        if !self.measured(flight.task.arrival) {
            return;
        }
        self.meas_completed += 1;
        if latency > s.deadline_s {
            self.meas_misses += 1;
        }
        let under_fault = self.active_faults.iter().any(|&c| c > 0);
        if under_fault {
            self.fa.completions_during += 1;
        }
        let acc = &mut self.accums[flight.task.stream];
        acc.latencies.push(latency);
        if latency <= s.deadline_s {
            acc.on_time += 1;
        } else if under_fault {
            // Attribute the SLO violation to every currently-active class.
            self.fa.misses_during += 1;
            for (ci, &n) in self.active_faults.iter().enumerate() {
                if n > 0 {
                    self.fa.per_misses[ci] += 1;
                }
            }
        }
        acc.acc_sum += flight.task.accuracy;
        if flight.task.exit.is_some() {
            acc.early_exits += 1;
        }
        acc.device_wait_sum += flight.device_wait;
        acc.device_service_sum += flight.device_service;
        if flight.tx_time > 0.0 {
            acc.tx_sum += flight.tx_time;
            acc.tx_count += 1;
            acc.edge_sum += edge_time;
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TaskRecord {
                stream: flight.task.stream,
                arrival_s: flight.task.arrival.as_secs_f64(),
                device_wait_s: flight.device_wait,
                device_service_s: flight.device_service,
                tx_s: flight.tx_time,
                edge_s: edge_time,
                latency_s: latency,
                exit: flight.task.exit,
            });
        }
    }

    fn finish(mut self) -> (SimReport, RunTrace) {
        let trace = RunTrace {
            tasks: self.trace.take().unwrap_or_default(),
            faults: self.fault_trace.take().unwrap_or_default(),
            health: std::mem::take(&mut self.health),
        };
        let mut recovery = RecoveryMetrics::empty();
        recovery.timeouts = self.ra.timeouts;
        recovery.retries = self.ra.retries;
        recovery.hedges = self.ra.hedges;
        recovery.degraded = self.ra.degraded;
        recovery.degraded_on_time = self.ra.degraded_on_time;
        recovery.shed = self.ra.shed;
        if self.ra.degraded > 0 {
            let n = self.ra.degraded as f64;
            recovery.mean_degraded_accuracy = self.ra.degraded_acc_sum / n;
            recovery.accuracy_cost = (self.ra.nominal_acc_sum - self.ra.degraded_acc_sum) / n;
        }
        for brks in [&self.srv_breakers, &self.ap_breakers]
            .into_iter()
            .flatten()
        {
            for b in brks {
                recovery.breaker_opens += b.opens;
                recovery.breaker_half_opens += b.half_opens;
                recovery.breaker_closes += b.closes;
            }
        }
        // Requests still queued when the event queue drained are stalled
        // behind an unrecovered fault (a clean run always drains fully).
        // Count them so nothing is silently dropped.
        let mut stalled = 0usize;
        for d in 0..self.devices.len() {
            stalled += self.devices[d]
                .queue
                .iter()
                .chain(self.devices[d].current.iter())
                .chain(self.uplinks[d].queue.iter())
                .chain(self.uplinks[d].current.iter())
                .filter(|f| self.measured(f.task.arrival))
                .count();
        }
        for srv in &self.servers {
            stalled += srv
                .active
                .iter()
                .filter(|a| self.measured(a.flight.task.arrival))
                .count();
        }
        self.fa.stalled = stalled;
        let end_s = self.queue.now().as_secs_f64().max(1e-12);
        let server_utilization: Vec<f64> = self
            .servers
            .iter()
            .map(|s| (s.busy_s / end_s).clamp(0.0, 1.0))
            .collect();
        let mut all = Vec::new();
        let mut on_time = 0usize;
        let mut acc_sum = 0.0;
        let mut early = 0usize;
        let per_stream: Vec<_> = self
            .accums
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                all.extend_from_slice(&a.latencies);
                on_time += a.on_time;
                acc_sum += a.acc_sum;
                early += a.early_exits;
                a.finish(i)
            })
            .collect();
        let completed = all.len();
        let n = completed.max(1) as f64;
        let report = SimReport {
            generated: self.generated,
            completed,
            latency: LatencyStats::from_samples(all),
            deadline_ratio: on_time as f64 / n,
            mean_accuracy: acc_sum / n,
            early_exit_fraction: early as f64 / n,
            server_utilization,
            per_stream,
            faults: self.fa.finish(),
            recovery,
        };
        (report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ApSpec, DeviceSpec, ServerSpec};
    use crate::workload::ArrivalProcess;
    use scalpel_models::{ExitBehavior, ProcessorClass};

    fn one_device_cluster() -> Cluster {
        Cluster {
            devices: vec![DeviceSpec {
                id: 0,
                proc: ProcessorClass::JetsonNano.spec(),
                ap: 0,
                distance_m: 30.0,
            }],
            aps: vec![ApSpec {
                id: 0,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            }],
            servers: vec![ServerSpec {
                id: 0,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            }],
        }
    }

    fn no_exit_stream(rate: f64, device_time: f64, edge_flops: f64) -> CompiledStream {
        CompiledStream {
            id: 0,
            device: 0,
            server: Some(0),
            arrivals: ArrivalProcess::Poisson { rate_hz: rate },
            deadline_s: 0.25,
            device_time_to_exit: vec![],
            device_full_time: device_time,
            tx_bytes: 100_000.0,
            edge_flops,
            behavior: ExitBehavior::no_exits(0.76),
            acc_at_exit: vec![],
            acc_full: 0.76,
            bandwidth_share: 1.0,
            compute_weight: 1.0,
            degrade: scalpel_surgery::DegradeLadder::none(),
            fallback_servers: vec![],
        }
    }

    fn base_config() -> SimConfig {
        SimConfig {
            horizon_s: 20.0,
            warmup_s: 2.0,
            seed: 42,
            fading: false,
            faults: FaultPlan::none(),
            recovery: RecoveryConfig::none(),
        }
    }

    #[test]
    fn light_load_latency_matches_hand_computation() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(1.0, 0.005, 1e9);
        let sim = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config()).unwrap();
        let r = sim.run();
        assert!(r.completed > 10);
        // Expected: device 5ms + tx + edge service (no queueing at 1 rps).
        let link = cluster.link(0);
        let tx = link.tx_seconds(100_000.0, 1.0, 1.0) + 1e-3;
        let edge = 1e9 / ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let expect = 0.005 + tx + edge;
        assert!(
            (r.latency.mean - expect).abs() < 0.1 * expect,
            "mean {} expect {}",
            r.latency.mean,
            expect
        );
        assert_eq!(r.early_exit_fraction, 0.0);
        assert!((r.mean_accuracy - 0.76).abs() < 1e-9);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(5.0, 0.01, 2e9);
        let mut cfg = base_config();
        cfg.fading = true;
        let r1 = EdgeSim::new(cluster.clone(), vec![s.clone()], cfg.clone())
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.latency.mean, r2.latency.mean);
        assert_eq!(r1.latency.p99, r2.latency.p99);
    }

    #[test]
    fn different_seeds_differ() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(5.0, 0.01, 2e9);
        let mut c1 = base_config();
        c1.seed = 1;
        let mut c2 = base_config();
        c2.seed = 2;
        let r1 = EdgeSim::new(cluster.clone(), vec![s.clone()], c1)
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, vec![s], c2).unwrap().run();
        assert_ne!(r1.latency.mean, r2.latency.mean);
    }

    #[test]
    fn early_exits_complete_on_device() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(2.0, 0.02, 1e9);
        // One exit at cumulative 40% coverage.
        s.device_time_to_exit = vec![0.004];
        s.behavior = ExitBehavior {
            exit_probs: vec![0.4],
            cum: vec![0.4],
            remain_prob: 0.6,
            expected_accuracy: 0.75,
        };
        s.acc_at_exit = vec![0.73];
        let r = EdgeSim::new(cluster, vec![s], base_config()).unwrap().run();
        assert!(
            (r.early_exit_fraction - 0.4).abs() < 0.08,
            "early fraction {}",
            r.early_exit_fraction
        );
        // Early-exit requests are much faster than offloaded ones, so p50
        // under light load splits the two bands.
        assert!(r.latency.mean > 0.004);
    }

    #[test]
    fn device_only_plan_never_touches_network() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(2.0, 0.03, 0.0);
        s.server = None;
        let r = EdgeSim::new(cluster, vec![s], base_config()).unwrap().run();
        assert!(r.completed > 10);
        assert_eq!(r.per_stream[0].mean_tx, 0.0);
        assert!((r.latency.p50 - 0.03).abs() < 5e-3);
    }

    #[test]
    fn overload_violates_deadlines() {
        let cluster = one_device_cluster();
        // Device service 0.5 s at 10 rps: utterly overloaded.
        let mut s = no_exit_stream(10.0, 0.5, 1e9);
        s.server = None;
        let mut cfg = base_config();
        cfg.horizon_s = 10.0;
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert!(r.deadline_ratio < 0.1, "ratio {}", r.deadline_ratio);
        assert!(r.latency.p99 > 1.0);
    }

    #[test]
    fn ps_server_shares_capacity_between_streams() {
        let mut cluster = one_device_cluster();
        cluster.devices.push(DeviceSpec {
            id: 1,
            proc: ProcessorClass::JetsonNano.spec(),
            ap: 0,
            distance_m: 30.0,
        });
        // Two heavy streams on one server: each should see roughly half
        // the capacity under load, i.e. service times stretch.
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let flops = cap * 0.03; // 30 ms alone
        let mk = |id: usize, dev: usize| {
            let mut s = no_exit_stream(8.0, 0.001, flops);
            s.id = id;
            s.device = dev;
            s.bandwidth_share = 0.5;
            s
        };
        let r = EdgeSim::new(cluster, vec![mk(0, 0), mk(1, 1)], base_config())
            .unwrap()
            .run();
        // Mean edge time must exceed the isolated 30 ms service time due to
        // sharing, but not blow up (utilization = 2*8*0.03 = 0.48).
        let edge = r.per_stream[0].mean_edge;
        assert!(edge > 0.030, "edge {edge}");
        assert!(edge < 0.30, "edge {edge}");
    }

    #[test]
    fn invalid_stream_is_rejected_up_front() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(1.0, 0.01, 1e9);
        s.device = 5;
        assert!(EdgeSim::new(cluster.clone(), vec![s], base_config()).is_err());
        let mut s = no_exit_stream(1.0, 0.01, 1e9);
        s.server = Some(3);
        assert!(EdgeSim::new(cluster.clone(), vec![s], base_config()).is_err());
        let mut s = no_exit_stream(1.0, 0.01, 1e9);
        s.id = 4;
        assert!(EdgeSim::new(cluster, vec![s], base_config()).is_err());
    }

    #[test]
    fn warmup_requests_are_not_measured() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(10.0, 0.001, 1e8);
        let mut cfg = base_config();
        cfg.horizon_s = 12.0;
        cfg.warmup_s = 2.0;
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // ~10 rps over a 10 s measured window.
        assert!(r.generated > 60 && r.generated < 140, "{}", r.generated);
        assert_eq!(r.completed, r.generated);
    }

    fn two_ap_cluster() -> Cluster {
        Cluster {
            devices: (0..4)
                .map(|id| DeviceSpec {
                    id,
                    proc: ProcessorClass::JetsonNano.spec(),
                    ap: id / 2,
                    distance_m: 30.0,
                })
                .collect(),
            aps: (0..2)
                .map(|id| ApSpec {
                    id,
                    bandwidth_hz: 20e6,
                    rtt_s: 2e-3,
                })
                .collect(),
            servers: (0..2)
                .map(|id| ServerSpec {
                    id,
                    proc: ProcessorClass::EdgeGpuT4.spec(),
                })
                .collect(),
        }
    }

    #[test]
    fn multi_ap_streams_run_independently() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = no_exit_stream(3.0, 0.005, 5e8);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let r = EdgeSim::new(cluster, streams, base_config()).unwrap().run();
        assert_eq!(r.per_stream.len(), 4);
        for ss in &r.per_stream {
            assert!(ss.completed > 10, "stream {} starved", ss.stream);
        }
    }

    #[test]
    fn busier_ap_sees_higher_latency() {
        // AP 0 hosts two heavy transmitters, AP 1 one: same share each, so
        // the AP-0 devices queue more (each share is of its own AP).
        let cluster = two_ap_cluster();
        let mk = |id: usize, dev: usize, share: f64| {
            let mut s = no_exit_stream(4.0, 0.001, 1e8);
            s.id = id;
            s.device = dev;
            s.server = Some(0);
            s.tx_bytes = 1.5e6;
            s.bandwidth_share = share;
            s
        };
        // device 0 & 1 on AP0 with half share each; device 2 on AP1 alone
        // with FULL share.
        let streams = vec![mk(0, 0, 0.5), mk(1, 1, 0.5), mk(2, 2, 1.0)];
        let r = EdgeSim::new(cluster, streams, base_config()).unwrap().run();
        let shared = r.per_stream[0].latency.mean;
        let alone = r.per_stream[2].latency.mean;
        assert!(
            shared > alone * 1.5,
            "shared {shared} not clearly worse than alone {alone}"
        );
    }

    #[test]
    fn trace_arrivals_execute_exactly() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(1.0, 0.002, 1e8);
        s.server = None;
        s.arrivals = ArrivalProcess::Trace {
            gaps: vec![1.0, 1.0, 1.0, 1.0],
        };
        let mut cfg = base_config();
        cfg.horizon_s = 10.5;
        cfg.warmup_s = 0.0;
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // arrivals at t = 1, 2, ..., 10 -> 10 measured requests.
        assert_eq!(r.generated, 10);
        assert_eq!(r.completed, 10);
    }

    #[test]
    fn heavier_weight_gets_faster_edge_service() {
        let mut cluster = one_device_cluster();
        cluster.devices.push(DeviceSpec {
            id: 1,
            proc: ProcessorClass::JetsonNano.spec(),
            ap: 0,
            distance_m: 30.0,
        });
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let mk = |id: usize, dev: usize, weight: f64| {
            let mut s = no_exit_stream(6.0, 0.001, cap * 0.05);
            s.id = id;
            s.device = dev;
            s.bandwidth_share = 0.5;
            s.compute_weight = weight;
            s
        };
        let r = EdgeSim::new(cluster, vec![mk(0, 0, 4.0), mk(1, 1, 1.0)], base_config())
            .unwrap()
            .run();
        let heavy = r.per_stream[0].mean_edge;
        let light = r.per_stream[1].mean_edge;
        assert!(
            heavy < light,
            "weight-4 stream ({heavy}) should outpace weight-1 ({light})"
        );
    }

    #[test]
    fn server_utilization_reflects_load() {
        let cluster = one_device_cluster();
        // Unused server in a 2-server variant.
        let mut cluster2 = cluster.clone();
        cluster2.servers.push(ServerSpec {
            id: 1,
            proc: ProcessorClass::EdgeGpuT4.spec(),
        });
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        // ~60% utilization target: 6 rps × 0.1 s of edge work.
        let s = no_exit_stream(6.0, 0.0005, cap * 0.1);
        let r = EdgeSim::new(cluster2, vec![s], base_config())
            .unwrap()
            .run();
        assert_eq!(r.server_utilization.len(), 2);
        assert!(
            (r.server_utilization[0] - 0.6).abs() < 0.15,
            "util {}",
            r.server_utilization[0]
        );
        assert_eq!(r.server_utilization[1], 0.0);
    }

    #[test]
    fn idle_cluster_reports_zero_utilization() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(1.0, 0.001, 0.0);
        s.server = None; // device-only: server never touched
        let r = EdgeSim::new(cluster, vec![s], base_config()).unwrap().run();
        assert_eq!(r.server_utilization, vec![0.0]);
    }

    #[test]
    fn trace_records_are_consistent_with_report() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(3.0, 0.004, 1e9);
        s.device_time_to_exit = vec![0.002];
        s.behavior = ExitBehavior {
            exit_probs: vec![0.3],
            cum: vec![0.3],
            remain_prob: 0.7,
            expected_accuracy: 0.75,
        };
        s.acc_at_exit = vec![0.73];
        let sim = EdgeSim::new(cluster, vec![s], base_config()).unwrap();
        let (report, trace) = sim.run_traced();
        assert_eq!(trace.len(), report.completed);
        // Trace mean latency must equal the report's.
        let mean = trace.iter().map(|r| r.latency_s).sum::<f64>() / trace.len() as f64;
        assert!((mean - report.latency.mean).abs() < 1e-9);
        // Exit counts agree.
        let exits = trace.iter().filter(|r| r.exit.is_some()).count();
        assert!((exits as f64 / trace.len() as f64 - report.early_exit_fraction).abs() < 1e-9);
        for r in &trace {
            // Components never exceed the end-to-end latency (uplink
            // queueing is the untracked remainder)...
            assert!(r.component_sum_s() <= r.latency_s + 1e-9, "{r:?}");
            // ...and on-device completions decompose exactly.
            if r.on_device() {
                assert!(
                    (r.device_wait_s + r.device_service_s - r.latency_s).abs() < 1e-9,
                    "{r:?}"
                );
                assert!(r.exit.is_some());
            }
            assert!(r.arrival_s >= base_config().warmup_s);
        }
    }

    #[test]
    fn untraced_run_matches_traced_report() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.003, 1e9);
        let sim = EdgeSim::new(cluster, vec![s], base_config()).unwrap();
        let plain = sim.run();
        let (traced, _) = sim.run_traced();
        assert_eq!(plain.latency.mean, traced.latency.mean);
        assert_eq!(plain.completed, traced.completed);
    }

    use crate::faults::{FaultEvent, FaultProfile};

    fn fault_cfg(events: Vec<FaultEvent>) -> SimConfig {
        let mut cfg = base_config();
        cfg.faults = FaultPlan { events };
        cfg
    }

    fn at(at_s: f64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at_s, kind }
    }

    #[test]
    fn empty_fault_plan_matches_clean_run_exactly() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(5.0, 0.01, 2e9);
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let faulted = EdgeSim::new(cluster, vec![s], fault_cfg(vec![]))
            .unwrap()
            .run();
        assert_eq!(clean.completed, faulted.completed);
        assert_eq!(clean.latency.mean, faulted.latency.mean);
        assert_eq!(faulted.faults, FaultMetrics::empty());
    }

    #[test]
    fn device_outage_strands_and_conserves_requests() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(8.0, 0.01, 1e9);
        let cfg = fault_cfg(vec![
            at(6.0, FaultKind::DeviceDown { device: 0 }),
            at(9.0, FaultKind::DeviceUp { device: 0 }),
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // The outage cuts ~3 s out of an ~18 s window; arrivals resume after.
        assert!(r.completed > 0);
        assert_eq!(r.generated, r.completed + r.faults.lost());
        assert_eq!(r.faults.injected, 2);
        assert_eq!(r.faults.applied, 2);
        assert_eq!(r.faults.recoveries, 1);
        assert!((r.faults.mean_recovery_s - 3.0).abs() < 1e-9);
        let churn = &r.faults.per_class[FaultClass::DeviceChurn.index()];
        assert_eq!(churn.applied, 2);
        assert_eq!(churn.stranded, r.faults.stranded);
    }

    #[test]
    fn redundant_fault_events_inject_but_do_not_apply() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(2.0, 0.005, 1e9);
        let cfg = fault_cfg(vec![
            at(3.0, FaultKind::DeviceUp { device: 0 }), // already up
            at(4.0, FaultKind::LinkRestore { ap: 0 }),  // already nominal
            at(5.0, FaultKind::ServerRestore { server: 0 }), // already nominal
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r.faults.injected, 3);
        assert_eq!(r.faults.applied, 0);
        assert_eq!(r.generated, r.completed);
    }

    #[test]
    fn ap_outage_delays_but_never_drops() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.002, 5e8);
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let cfg = fault_cfg(vec![
            at(5.0, FaultKind::ApDown { ap: 0 }),
            at(8.0, FaultKind::ApUp { ap: 0 }),
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // Data queues during the outage and retransmits afterwards: every
        // request still completes, but tail latency grows past the ~3 s gap.
        assert_eq!(r.generated, r.completed);
        assert_eq!(r.faults.stranded, 0);
        assert!(r.latency.max >= 2.0, "max {}", r.latency.max);
        assert!(r.latency.max > clean.latency.max);
        assert!(r.deadline_ratio < clean.deadline_ratio);
    }

    #[test]
    fn unrecovered_ap_outage_stalls_queued_requests() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.002, 5e8);
        let cfg = fault_cfg(vec![at(5.0, FaultKind::ApDown { ap: 0 })]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // Everything after the outage piles up in the uplink queue forever.
        assert!(r.faults.stalled > 0);
        assert_eq!(r.generated, r.completed + r.faults.lost());
    }

    #[test]
    fn link_degradation_stretches_transmissions() {
        let cluster = one_device_cluster();
        let mut s = no_exit_stream(2.0, 0.001, 1e8);
        s.tx_bytes = 1e6; // transmission-dominated
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let cfg = fault_cfg(vec![at(
            2.0,
            FaultKind::LinkDegrade {
                ap: 0,
                factor: 0.25,
            },
        )]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r.generated, r.completed);
        assert!(
            r.per_stream[0].mean_tx > 2.0 * clean.per_stream[0].mean_tx,
            "degraded tx {} vs clean {}",
            r.per_stream[0].mean_tx,
            clean.per_stream[0].mean_tx
        );
    }

    #[test]
    fn server_throttle_slows_edge_service() {
        let cluster = one_device_cluster();
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let s = no_exit_stream(2.0, 0.001, cap * 0.02); // 20 ms alone
        let clean = EdgeSim::new(cluster.clone(), vec![s.clone()], base_config())
            .unwrap()
            .run();
        let cfg = fault_cfg(vec![at(
            2.0,
            FaultKind::ServerThrottle {
                server: 0,
                factor: 0.25,
            },
        )]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert_eq!(r.generated, r.completed);
        assert!(
            r.per_stream[0].mean_edge > 3.0 * clean.per_stream[0].mean_edge,
            "throttled edge {} vs clean {}",
            r.per_stream[0].mean_edge,
            clean.per_stream[0].mean_edge
        );
    }

    #[test]
    fn fault_log_records_every_event() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(4.0, 0.005, 1e9);
        let cfg = fault_cfg(vec![
            at(4.0, FaultKind::DeviceDown { device: 0 }),
            at(5.0, FaultKind::DeviceDown { device: 0 }), // redundant
            at(6.0, FaultKind::DeviceUp { device: 0 }),
        ]);
        let (report, trace) = EdgeSim::new(cluster, vec![s], cfg).unwrap().run_logged();
        assert_eq!(trace.faults.len(), 3);
        assert!(trace.faults[0].applied);
        assert!(!trace.faults[1].applied);
        assert!(trace.faults[2].applied);
        assert_eq!(trace.faults[1].stranded, 0);
        let stranded_logged: usize = trace.faults.iter().map(|f| f.stranded).sum();
        assert_eq!(stranded_logged, report.faults.stranded);
        assert_eq!(trace.tasks.len(), report.completed);
    }

    #[test]
    fn misses_during_fault_are_attributed() {
        let cluster = one_device_cluster();
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        // Edge-heavy stream with a tight deadline: a deep throttle makes
        // every completion during the fault miss its SLO.
        let mut s = no_exit_stream(4.0, 0.001, cap * 0.05);
        s.deadline_s = 0.1;
        let cfg = fault_cfg(vec![
            at(
                5.0,
                FaultKind::ServerThrottle {
                    server: 0,
                    factor: 0.2,
                },
            ),
            at(12.0, FaultKind::ServerRestore { server: 0 }),
        ]);
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert!(r.faults.misses_during_fault > 0);
        assert!(r.faults.completions_during_fault >= r.faults.misses_during_fault);
        let throttle = &r.faults.per_class[FaultClass::ComputeThrottle.index()];
        assert_eq!(throttle.misses_during, r.faults.misses_during_fault);
        assert!((r.faults.mean_recovery_s - 7.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_fault_plan_is_rejected_up_front() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(1.0, 0.01, 1e9);
        let cfg = fault_cfg(vec![at(1.0, FaultKind::DeviceDown { device: 7 })]);
        assert!(EdgeSim::new(cluster.clone(), vec![s.clone()], cfg).is_err());
        let cfg = fault_cfg(vec![at(
            1.0,
            FaultKind::LinkDegrade {
                ap: 0,
                factor: -0.5,
            },
        )]);
        assert!(EdgeSim::new(cluster, vec![s], cfg).is_err());
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = no_exit_stream(3.0, 0.005, 5e8);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let mut cfg = fault_cfg(
            FaultProfile {
                rate_hz: 0.5,
                ..FaultProfile::default()
            }
            .plan(4, 2, 2, 20.0)
            .events,
        );
        cfg.fading = true;
        let r1 = EdgeSim::new(cluster.clone(), streams.clone(), cfg.clone())
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, streams, cfg).unwrap().run();
        assert!(r1.faults.injected > 0);
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.latency.mean, r2.latency.mean);
        assert_eq!(r1.faults, r2.faults);
    }

    /// A stream with one forced-exit rung and a local-finish rung.
    fn recoverable_stream(rate: f64) -> CompiledStream {
        let mut s = no_exit_stream(rate, 0.002, 5e8);
        s.device_time_to_exit = vec![0.001];
        s.behavior = ExitBehavior {
            exit_probs: vec![0.2],
            cum: vec![0.2],
            remain_prob: 0.8,
            expected_accuracy: 0.75,
        };
        s.acc_at_exit = vec![0.70];
        s.degrade = scalpel_surgery::DegradeLadder::new(vec![
            DegradeRung {
                exit: Some(0),
                extra_device_s: 0.0,
                accuracy: 0.69,
            },
            DegradeRung {
                exit: None,
                extra_device_s: 0.01,
                accuracy: 0.76,
            },
        ]);
        s
    }

    #[test]
    fn disabled_recovery_is_a_bitwise_noop() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = no_exit_stream(3.0, 0.005, 5e8);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let mut cfg = fault_cfg(
            FaultProfile {
                rate_hz: 0.8,
                ..FaultProfile::default()
            }
            .plan(4, 2, 2, 20.0)
            .events,
        );
        cfg.fading = true;
        cfg.recovery = RecoveryConfig::none();
        let legacy = EdgeSim::new(cluster.clone(), streams.clone(), cfg.clone())
            .unwrap()
            .run();
        let r = EdgeSim::new(cluster, streams, cfg).unwrap().run();
        assert_eq!(legacy.completed, r.completed);
        assert_eq!(legacy.latency.p99, r.latency.p99);
        assert_eq!(legacy.faults, r.faults);
        assert_eq!(r.recovery, RecoveryMetrics::empty());
    }

    #[test]
    fn degradation_clears_an_unrecovered_ap_outage() {
        let cluster = one_device_cluster();
        let s = recoverable_stream(4.0);
        // Without recovery this schedule stalls every post-outage request.
        let mut cfg = fault_cfg(vec![at(5.0, FaultKind::ApDown { ap: 0 })]);
        let bare = EdgeSim::new(cluster.clone(), vec![s.clone()], cfg.clone())
            .unwrap()
            .run();
        assert!(bare.faults.stalled > 0);
        cfg.recovery = RecoveryConfig::retry_only();
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        // Retries exhaust against the dead AP and the ladder takes over:
        // nothing is left stuck on the uplink.
        assert_eq!(r.faults.stalled, 0);
        assert!(r.recovery.timeouts > 0);
        assert!(r.recovery.degraded > 0);
        assert!(r.recovery.accuracy_cost >= 0.0);
        assert_eq!(r.generated, r.accounted());
    }

    #[test]
    fn breakers_open_under_ap_outage_and_telemetry_sees_them() {
        let cluster = one_device_cluster();
        let s = recoverable_stream(6.0);
        let mut cfg = fault_cfg(vec![at(4.0, FaultKind::ApDown { ap: 0 })]);
        cfg.recovery = RecoveryConfig::full();
        let (r, trace) = EdgeSim::new(cluster, vec![s], cfg).unwrap().run_logged();
        assert!(r.recovery.breaker_opens > 0);
        assert!(!trace.health.is_empty());
        // Some epoch after the outage reports the AP breaker open.
        assert!(trace.health.iter().any(|h| h.ap_open.iter().any(|&o| o)));
        assert_eq!(r.generated, r.accounted());
    }

    #[test]
    fn hedging_reroutes_around_a_dead_server() {
        let cluster = two_ap_cluster();
        let cap = ProcessorClass::EdgeGpuT4.spec().flops_per_sec;
        let mut s = recoverable_stream(6.0);
        s.edge_flops = cap * 0.01;
        s.deadline_s = 0.1;
        s.server = Some(0);
        s.fallback_servers = vec![1];
        // 10x throttle on the primary: completions still flow but every
        // one misses its 100 ms deadline, so the outcome-driven breaker
        // opens and hedging shifts traffic to server 1.
        let mut cfg = fault_cfg(vec![at(
            4.0,
            FaultKind::ServerThrottle {
                server: 0,
                factor: 0.1,
            },
        )]);
        cfg.recovery = RecoveryConfig::full();
        let r = EdgeSim::new(cluster, vec![s], cfg).unwrap().run();
        assert!(r.recovery.breaker_opens > 0, "{:?}", r.recovery);
        assert!(r.recovery.hedges > 0, "{:?}", r.recovery);
        assert!(r.server_utilization[1] > 0.0);
        assert_eq!(r.generated, r.accounted());
    }

    #[test]
    fn recovery_runs_are_deterministic() {
        let cluster = two_ap_cluster();
        let streams: Vec<CompiledStream> = (0..4)
            .map(|k| {
                let mut s = recoverable_stream(3.0);
                s.id = k;
                s.device = k;
                s.server = Some(k % 2);
                s.fallback_servers = vec![(k + 1) % 2];
                s.bandwidth_share = 0.5;
                s
            })
            .collect();
        let mut cfg = fault_cfg(
            FaultProfile {
                rate_hz: 0.8,
                ..FaultProfile::default()
            }
            .plan(4, 2, 2, 20.0)
            .events,
        );
        cfg.fading = true;
        cfg.recovery = RecoveryConfig::full();
        let r1 = EdgeSim::new(cluster.clone(), streams.clone(), cfg.clone())
            .unwrap()
            .run();
        let r2 = EdgeSim::new(cluster, streams, cfg).unwrap().run();
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.latency.mean, r2.latency.mean);
        assert_eq!(r1.recovery, r2.recovery);
        assert_eq!(r1.faults, r2.faults);
    }

    #[test]
    fn invalid_recovery_config_is_rejected_up_front() {
        let cluster = one_device_cluster();
        let s = no_exit_stream(1.0, 0.01, 1e9);
        let mut cfg = base_config();
        cfg.recovery = RecoveryConfig {
            hedge: true, // hedging needs breakers
            ..RecoveryConfig::none()
        };
        assert!(EdgeSim::new(cluster.clone(), vec![s.clone()], cfg).is_err());
        let mut s2 = s;
        s2.fallback_servers = vec![9];
        assert!(EdgeSim::new(cluster, vec![s2], base_config()).is_err());
    }

    #[test]
    fn fading_increases_latency_variance() {
        let cluster = one_device_cluster();
        // Transmission-dominated stream.
        let mut s = no_exit_stream(2.0, 0.001, 1e8);
        s.tx_bytes = 2e6;
        let mut on = base_config();
        on.fading = true;
        let mut off = base_config();
        off.fading = false;
        let r_on = EdgeSim::new(cluster.clone(), vec![s.clone()], on)
            .unwrap()
            .run();
        let r_off = EdgeSim::new(cluster, vec![s], off).unwrap().run();
        let spread_on = r_on.latency.p99 - r_on.latency.p50;
        let spread_off = r_off.latency.p99 - r_off.latency.p50;
        assert!(spread_on > spread_off, "{spread_on} vs {spread_off}");
    }
}
