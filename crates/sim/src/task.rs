//! Compiled streams — the simulator's execution contract.
//!
//! `scalpel-core` lowers (surgery plan × resource allocation × topology)
//! into a [`CompiledStream`] of plain numbers. Keeping the simulator blind
//! to *how* the plan was chosen means every optimizer and baseline is
//! measured by exactly the same machinery.

use crate::time::SimTime;
use crate::workload::ArrivalProcess;
use scalpel_models::ExitBehavior;
use scalpel_surgery::DegradeLadder;
use serde::{Deserialize, Serialize};

/// Stream index.
pub type StreamId = usize;

/// Everything the simulator needs to execute one inference stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledStream {
    /// Stream index (== position in the simulator's stream table).
    pub id: StreamId,
    /// Device the stream's requests originate on.
    pub device: usize,
    /// Edge server running the suffix; `None` for device-only plans.
    pub server: Option<usize>,
    /// Request arrival process.
    pub arrivals: ArrivalProcess,
    /// Relative deadline per request, seconds.
    pub deadline_s: f64,
    /// Device compute seconds for a request leaving at exit `i`
    /// (backbone prefix through the host + heads 0..=i), ascending.
    pub device_time_to_exit: Vec<f64>,
    /// Device compute seconds when no device exit fires (full prefix +
    /// every device-side head). For device-only plans this is the whole
    /// model.
    pub device_full_time: f64,
    /// Bytes transmitted to the edge when no device exit fires.
    pub tx_bytes: f64,
    /// Edge-side FLOPs when no device exit fires.
    pub edge_flops: f64,
    /// Exit behavior restricted to device-side exits.
    pub behavior: ExitBehavior,
    /// Conditional accuracy of each device-side exit.
    pub acc_at_exit: Vec<f64>,
    /// Accuracy of the full path (through the edge suffix).
    pub acc_full: f64,
    /// Fraction of the AP's spectrum allocated to this stream's device.
    pub bandwidth_share: f64,
    /// Weighted-PS weight on the server (relative share of capacity).
    pub compute_weight: f64,
    /// Degraded completion modes available when the offload path is
    /// unusable (empty = requests strand instead; always empty for
    /// device-only plans). Only consulted when recovery is enabled.
    #[serde(default)]
    pub degrade: DegradeLadder,
    /// Alternative servers for hedged re-offload when the primary's
    /// breaker is open, in preference order. Only consulted when recovery
    /// hedging is enabled.
    #[serde(default)]
    pub fallback_servers: Vec<usize>,
}

impl CompiledStream {
    /// Sanity-check internal consistency. Called by the simulator at
    /// start-up so mis-compiled plans fail loudly rather than distort
    /// results.
    pub fn validate(&self) -> Result<(), String> {
        if self.deadline_s <= 0.0 {
            return Err(format!("stream {}: non-positive deadline", self.id));
        }
        if self.device_time_to_exit.len() != self.behavior.exit_probs.len() {
            return Err(format!(
                "stream {}: {} exit times vs {} exit probs",
                self.id,
                self.device_time_to_exit.len(),
                self.behavior.exit_probs.len()
            ));
        }
        if self.acc_at_exit.len() != self.behavior.exit_probs.len() {
            return Err(format!("stream {}: accuracy/exit arity mismatch", self.id));
        }
        let mut prev = 0.0;
        for (i, &t) in self.device_time_to_exit.iter().enumerate() {
            if t < prev {
                return Err(format!("stream {}: exit time {i} not ascending", self.id));
            }
            prev = t;
        }
        if self.device_full_time + 1e-12 < prev {
            return Err(format!(
                "stream {}: full device time below last exit time",
                self.id
            ));
        }
        if self.server.is_some() {
            if !(0.0..=1.0 + 1e-9).contains(&self.bandwidth_share) || self.bandwidth_share <= 0.0 {
                return Err(format!(
                    "stream {}: bandwidth share {} outside (0,1]",
                    self.id, self.bandwidth_share
                ));
            }
            if self.compute_weight <= 0.0 {
                return Err(format!("stream {}: non-positive compute weight", self.id));
            }
            if self.tx_bytes < 0.0 || self.edge_flops < 0.0 {
                return Err(format!("stream {}: negative edge demand", self.id));
            }
        }
        self.degrade
            .validate()
            .map_err(|e| format!("stream {}: degrade ladder: {e}", self.id))?;
        for r in &self.degrade.rungs {
            if let Some(i) = r.exit {
                if i >= self.acc_at_exit.len() {
                    return Err(format!(
                        "stream {}: degrade rung forces missing exit {i}",
                        self.id
                    ));
                }
            }
        }
        if self.server.is_none() && (!self.degrade.is_empty() || !self.fallback_servers.is_empty())
        {
            return Err(format!(
                "stream {}: device-only plans carry no recovery options",
                self.id
            ));
        }
        Ok(())
    }

    /// Probability a request completes on the device (early exit).
    pub fn device_exit_prob(&self) -> f64 {
        if self.server.is_none() {
            1.0
        } else {
            1.0 - self.behavior.remain_prob
        }
    }
}

/// One in-flight request.
#[derive(Debug, Clone, Copy)]
pub struct RunTask {
    /// Stream this request belongs to.
    pub stream: StreamId,
    /// Arrival timestamp.
    pub arrival: SimTime,
    /// Pre-sampled exit decision: `Some(i)` leaves at device exit `i`,
    /// `None` runs the full path.
    pub exit: Option<usize>,
    /// Accuracy value credited on completion (conditional accuracy of the
    /// taken path).
    pub accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_stream() -> CompiledStream {
        CompiledStream {
            id: 0,
            device: 0,
            server: Some(0),
            arrivals: ArrivalProcess::Poisson { rate_hz: 5.0 },
            deadline_s: 0.2,
            device_time_to_exit: vec![0.01, 0.02],
            device_full_time: 0.03,
            tx_bytes: 50_000.0,
            edge_flops: 1e9,
            behavior: ExitBehavior {
                exit_probs: vec![0.3, 0.2],
                cum: vec![0.3, 0.5],
                remain_prob: 0.5,
                expected_accuracy: 0.74,
            },
            acc_at_exit: vec![0.70, 0.73],
            acc_full: 0.76,
            bandwidth_share: 0.25,
            compute_weight: 1.0,
            degrade: DegradeLadder::none(),
            fallback_servers: vec![],
        }
    }

    #[test]
    fn valid_stream_passes() {
        assert!(base_stream().validate().is_ok());
    }

    #[test]
    fn arity_mismatches_fail() {
        let mut s = base_stream();
        s.device_time_to_exit.pop();
        assert!(s.validate().is_err());
        let mut s = base_stream();
        s.acc_at_exit.pop();
        assert!(s.validate().is_err());
    }

    #[test]
    fn non_ascending_exit_times_fail() {
        let mut s = base_stream();
        s.device_time_to_exit = vec![0.02, 0.01];
        assert!(s.validate().is_err());
    }

    #[test]
    fn full_time_below_last_exit_fails() {
        let mut s = base_stream();
        s.device_full_time = 0.015;
        assert!(s.validate().is_err());
    }

    #[test]
    fn offloaded_stream_needs_positive_shares() {
        let mut s = base_stream();
        s.bandwidth_share = 0.0;
        assert!(s.validate().is_err());
        let mut s = base_stream();
        s.compute_weight = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn device_only_streams_skip_share_checks() {
        let mut s = base_stream();
        s.server = None;
        s.bandwidth_share = 0.0;
        s.compute_weight = 0.0;
        assert!(s.validate().is_ok());
        assert_eq!(s.device_exit_prob(), 1.0);
    }

    #[test]
    fn device_exit_prob_complements_remain() {
        let s = base_stream();
        assert!((s.device_exit_prob() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn device_only_streams_reject_recovery_options() {
        use scalpel_surgery::DegradeRung;
        let mut s = base_stream();
        s.server = None;
        s.fallback_servers = vec![1];
        assert!(s.validate().is_err());
        let mut s = base_stream();
        s.server = None;
        s.degrade = DegradeLadder::new(vec![DegradeRung {
            exit: Some(0),
            extra_device_s: 0.0,
            accuracy: 0.7,
        }]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn malformed_ladder_fails_stream_validation() {
        use scalpel_surgery::DegradeRung;
        let mut s = base_stream();
        s.degrade = DegradeLadder {
            rungs: vec![DegradeRung {
                exit: None,
                extra_device_s: -0.5,
                accuracy: 0.7,
            }],
        };
        assert!(s.validate().is_err());
    }
}
