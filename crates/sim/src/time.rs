//! Fixed-point simulation time.
//!
//! Nanosecond-resolution `u64` — no float drift in event ordering, ~584
//! simulated years of range. Floats only appear at the API edges.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as an "infinite" horizon sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From seconds (saturating, non-negative; NaN treated as zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimTime(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference in seconds (`self - earlier`).
    #[inline]
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 / 1e9
    }

    /// Advance by `s` seconds (saturating).
    #[inline]
    pub fn after_secs(self, s: f64) -> SimTime {
        self + SimTime::from_secs_f64(s)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(SimTime::MAX + SimTime::from_nanos(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(5), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(b.secs_since(a), 1e-9);
        assert_eq!(a.secs_since(b), 0.0); // saturating
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(SimTime::from_secs_f64(1e300), SimTime::MAX);
    }
}
