//! Per-request and per-fault trace records (optional run output).
//!
//! [`crate::EdgeSim::run_traced`] returns, besides the aggregate report,
//! one [`TaskRecord`] per measured completion with its full timing
//! decomposition — the raw material for debugging, latency-breakdown
//! plots, and the cross-stage invariant tests.
//! [`crate::EdgeSim::run_logged`] additionally returns one [`FaultRecord`]
//! per executed fault event, bundled in a [`RunTrace`].

use crate::faults::FaultKind;
use crate::recovery::HealthSnapshot;
use serde::{Deserialize, Serialize};

/// Timing decomposition of one completed request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Stream the request belongs to.
    pub stream: usize,
    /// Absolute arrival time, seconds.
    pub arrival_s: f64,
    /// Seconds queued before device compute started.
    pub device_wait_s: f64,
    /// Device compute service seconds.
    pub device_service_s: f64,
    /// Uplink transmission seconds (0 for on-device completions; excludes
    /// uplink queueing).
    pub tx_s: f64,
    /// Edge residence seconds (time from entering the server to finishing,
    /// including processor-sharing slowdown; 0 for on-device completions).
    pub edge_s: f64,
    /// End-to-end seconds.
    pub latency_s: f64,
    /// Device-side exit taken, if any.
    pub exit: Option<usize>,
}

impl TaskRecord {
    /// Sum of the measured stage components. Always ≤ `latency_s` (uplink
    /// queueing is the only stage not individually tracked); equals it
    /// exactly for requests that never touch the network.
    pub fn component_sum_s(&self) -> f64 {
        self.device_wait_s + self.device_service_s + self.tx_s + self.edge_s
    }

    /// Whether this request completed on the device.
    pub fn on_device(&self) -> bool {
        self.tx_s == 0.0
    }
}

/// One executed fault event, as seen by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Execution time, seconds.
    pub at_s: f64,
    /// The injected state change.
    pub kind: FaultKind,
    /// Whether the event changed simulator state (false for redundant
    /// events, e.g. downing an already-down device).
    pub applied: bool,
    /// Measured requests stranded by this event.
    pub stranded: usize,
}

/// Full event log of one run: per-completion timing records plus the
/// executed fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// One record per measured completion, in completion order.
    pub tasks: Vec<TaskRecord>,
    /// One record per executed fault event, in execution order.
    pub faults: Vec<FaultRecord>,
    /// One control-plane telemetry snapshot per recovery epoch (empty
    /// unless recovery telemetry is enabled) — what the fault detector
    /// consumes to trigger re-solves.
    #[serde(default)]
    pub health: Vec<HealthSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_sum_and_on_device() {
        let r = TaskRecord {
            stream: 0,
            arrival_s: 1.0,
            device_wait_s: 0.01,
            device_service_s: 0.02,
            tx_s: 0.0,
            edge_s: 0.0,
            latency_s: 0.03,
            exit: Some(0),
        };
        assert!((r.component_sum_s() - 0.03).abs() < 1e-12);
        assert!(r.on_device());
        let mut off = r.clone();
        off.tx_s = 0.005;
        assert!(!off.on_device());
    }
}
