//! Arrival processes for inference request streams.

use crate::error::SimError;
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// How a stream generates requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_hz` requests per second.
    Poisson {
        /// Mean arrival rate, requests/s.
        rate_hz: f64,
    },
    /// Near-periodic arrivals (camera-style) with uniform jitter.
    Periodic {
        /// Nominal inter-frame period, seconds.
        period_s: f64,
        /// Jitter as a fraction of the period (`0.0` = strictly periodic).
        jitter_frac: f64,
    },
    /// Two-state Markov-modulated Poisson process (bursty traffic).
    Mmpp2 {
        /// Arrival rate in the calm state, requests/s.
        rate_low: f64,
        /// Arrival rate in the bursty state, requests/s.
        rate_high: f64,
        /// Rate of switching between states, 1/s.
        switch_rate: f64,
    },
    /// Replay of recorded inter-arrival gaps (cycled).
    Trace {
        /// Inter-arrival gaps in seconds; must be non-empty.
        gaps: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrival rate in requests/s.
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_hz } => *rate_hz,
            ArrivalProcess::Periodic { period_s, .. } => 1.0 / period_s,
            ArrivalProcess::Mmpp2 {
                rate_low,
                rate_high,
                ..
            } => 0.5 * (rate_low + rate_high),
            ArrivalProcess::Trace { gaps } => {
                let total: f64 = gaps.iter().sum();
                if total > 0.0 {
                    gaps.len() as f64 / total
                } else {
                    0.0
                }
            }
        }
    }

    /// Check parameters are finite and in range.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |detail: String| SimError::InvalidArrival { detail };
        match self {
            ArrivalProcess::Poisson { rate_hz } => {
                if !rate_hz.is_finite() || *rate_hz <= 0.0 {
                    return Err(bad(format!("Poisson rate must be positive, got {rate_hz}")));
                }
            }
            ArrivalProcess::Periodic {
                period_s,
                jitter_frac,
            } => {
                if !period_s.is_finite() || *period_s <= 0.0 {
                    return Err(bad(format!("period must be positive, got {period_s}")));
                }
                if !jitter_frac.is_finite() || *jitter_frac < 0.0 {
                    return Err(bad(format!(
                        "jitter fraction must be non-negative, got {jitter_frac}"
                    )));
                }
            }
            ArrivalProcess::Mmpp2 {
                rate_low,
                rate_high,
                switch_rate,
            } => {
                for (name, r) in [
                    ("rate_low", rate_low),
                    ("rate_high", rate_high),
                    ("switch_rate", switch_rate),
                ] {
                    if !r.is_finite() || *r <= 0.0 {
                        return Err(bad(format!("MMPP {name} must be positive, got {r}")));
                    }
                }
            }
            ArrivalProcess::Trace { gaps } => {
                if gaps.is_empty() {
                    return Err(bad("trace has no gaps".into()));
                }
                for (i, g) in gaps.iter().enumerate() {
                    if !g.is_finite() || *g < 0.0 {
                        return Err(bad(format!("trace gap {i} must be non-negative, got {g}")));
                    }
                }
            }
        }
        Ok(())
    }

    /// Stateful generator for this process.
    pub fn generator(&self) -> ArrivalGen {
        ArrivalGen {
            process: self.clone(),
            state: ArrivalState::default(),
        }
    }
}

/// The mutable cursor of an arrival process: everything `next_gap` needs
/// beyond the (immutable, shareable) process parameters. `Copy`, so the
/// simulator keeps one per stream in flat scratch storage with no
/// per-run clone of trace gap vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalState {
    mmpp_high: bool,
    mmpp_residual: f64,
    trace_pos: usize,
}

impl ArrivalState {
    /// Sample the next inter-arrival gap of `process` in seconds.
    pub fn next_gap(&mut self, process: &ArrivalProcess, rng: &mut SimRng) -> f64 {
        match process {
            ArrivalProcess::Poisson { rate_hz } => rng.exponential(*rate_hz),
            ArrivalProcess::Periodic {
                period_s,
                jitter_frac,
            } => {
                let j = jitter_frac.clamp(0.0, 1.0);
                period_s * (1.0 + rng.uniform(-j, j))
            }
            ArrivalProcess::Mmpp2 {
                rate_low,
                rate_high,
                switch_rate,
            } => {
                // Competing exponentials: next arrival vs next state switch.
                let mut gap = self.mmpp_residual;
                self.mmpp_residual = 0.0;
                loop {
                    let rate = if self.mmpp_high {
                        *rate_high
                    } else {
                        *rate_low
                    };
                    let to_arrival = rng.exponential(rate);
                    let to_switch = rng.exponential(*switch_rate);
                    if to_arrival <= to_switch {
                        return gap + to_arrival;
                    }
                    gap += to_switch;
                    self.mmpp_high = !self.mmpp_high;
                }
            }
            ArrivalProcess::Trace { gaps } => {
                debug_assert!(!gaps.is_empty(), "empty trace");
                if gaps.is_empty() {
                    return f64::INFINITY;
                }
                let g = gaps[self.trace_pos % gaps.len()];
                self.trace_pos += 1;
                g
            }
        }
    }
}

/// Stateful arrival generator (a process plus its cursor), for callers
/// that want a self-contained sampler.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    state: ArrivalState,
}

impl ArrivalGen {
    /// Sample the next inter-arrival gap in seconds.
    pub fn next_gap(&mut self, rng: &mut SimRng) -> f64 {
        self.state.next_gap(&self.process, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(p: &ArrivalProcess, n: usize) -> f64 {
        let mut rng = SimRng::new(7, 0);
        let mut g = p.generator();
        (0..n).map(|_| g.next_gap(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let p = ArrivalProcess::Poisson { rate_hz: 8.0 };
        assert!((mean_gap(&p, 100_000) - 0.125).abs() < 0.005);
        assert_eq!(p.mean_rate(), 8.0);
    }

    #[test]
    fn periodic_stays_within_jitter() {
        let p = ArrivalProcess::Periodic {
            period_s: 0.1,
            jitter_frac: 0.2,
        };
        let mut rng = SimRng::new(1, 0);
        let mut g = p.generator();
        for _ in 0..1000 {
            let gap = g.next_gap(&mut rng);
            assert!((0.08..=0.12).contains(&gap), "gap {gap}");
        }
        assert!((p.mean_rate() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mmpp_mean_rate_between_states() {
        let p = ArrivalProcess::Mmpp2 {
            rate_low: 2.0,
            rate_high: 18.0,
            switch_rate: 1.0,
        };
        let m = mean_gap(&p, 200_000);
        // long-run rate = 10/s -> mean gap 0.1 s
        assert!((m - 0.1).abs() < 0.01, "mean gap {m}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let poisson = ArrivalProcess::Poisson { rate_hz: 10.0 };
        let mmpp = ArrivalProcess::Mmpp2 {
            rate_low: 2.0,
            rate_high: 18.0,
            switch_rate: 0.5,
        };
        let var = |p: &ArrivalProcess| {
            let mut rng = SimRng::new(3, 0);
            let mut g = p.generator();
            let gaps: Vec<f64> = (0..100_000).map(|_| g.next_gap(&mut rng)).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            gaps.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / gaps.len() as f64
        };
        assert!(var(&mmpp) > var(&poisson));
    }

    #[test]
    fn trace_replays_and_cycles() {
        let p = ArrivalProcess::Trace {
            gaps: vec![0.1, 0.2, 0.3],
        };
        let mut rng = SimRng::new(1, 0);
        let mut g = p.generator();
        let got: Vec<f64> = (0..6).map(|_| g.next_gap(&mut rng)).collect();
        assert_eq!(got, vec![0.1, 0.2, 0.3, 0.1, 0.2, 0.3]);
        assert!((p.mean_rate() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(ArrivalProcess::Poisson { rate_hz: 4.0 }.validate().is_ok());
        assert!(ArrivalProcess::Poisson { rate_hz: 0.0 }.validate().is_err());
        assert!(ArrivalProcess::Poisson {
            rate_hz: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Periodic {
            period_s: 0.1,
            jitter_frac: 0.2
        }
        .validate()
        .is_ok());
        assert!(ArrivalProcess::Periodic {
            period_s: 0.0,
            jitter_frac: 0.2
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Periodic {
            period_s: 0.1,
            jitter_frac: -0.5
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Mmpp2 {
            rate_low: 2.0,
            rate_high: 18.0,
            switch_rate: 1.0
        }
        .validate()
        .is_ok());
        assert!(ArrivalProcess::Mmpp2 {
            rate_low: 2.0,
            rate_high: f64::NAN,
            switch_rate: 1.0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Trace {
            gaps: vec![0.1, 0.2]
        }
        .validate()
        .is_ok());
        assert!(ArrivalProcess::Trace { gaps: vec![] }.validate().is_err());
        assert!(ArrivalProcess::Trace {
            gaps: vec![0.1, -0.2]
        }
        .validate()
        .is_err());
    }
}
