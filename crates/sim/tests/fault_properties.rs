//! Property-based invariants of the fault-injection layer.
//!
//! The central law: whatever the fault schedule, measured requests are
//! never silently dropped — every one of them is completed, stranded by a
//! device departure, or stalled behind an unrecovered outage, and the
//! metrics account for all three.

use proptest::prelude::*;
use scalpel_models::{ExitBehavior, ProcessorClass};
use scalpel_sim::{
    ApSpec, ArrivalProcess, Cluster, CompiledStream, DeviceSpec, EdgeSim, FaultClass, FaultPlan,
    FaultProfile, ServerSpec, SimConfig,
};

const N_DEVICES: usize = 3;
const N_APS: usize = 2;
const N_SERVERS: usize = 2;
const HORIZON_S: f64 = 8.0;

fn cluster() -> Cluster {
    Cluster {
        devices: (0..N_DEVICES)
            .map(|id| DeviceSpec {
                id,
                proc: ProcessorClass::JetsonNano.spec(),
                ap: id % N_APS,
                distance_m: 30.0,
            })
            .collect(),
        aps: (0..N_APS)
            .map(|id| ApSpec {
                id,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            })
            .collect(),
        servers: (0..N_SERVERS)
            .map(|id| ServerSpec {
                id,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            })
            .collect(),
    }
}

fn streams() -> Vec<CompiledStream> {
    (0..N_DEVICES)
        .map(|d| CompiledStream {
            id: d,
            device: d,
            server: Some(d % N_SERVERS),
            arrivals: ArrivalProcess::Poisson { rate_hz: 3.0 },
            deadline_s: 0.25,
            device_time_to_exit: vec![],
            device_full_time: 0.004,
            tx_bytes: 8e4,
            edge_flops: 5e8,
            behavior: ExitBehavior::no_exits(0.76),
            acc_at_exit: vec![],
            acc_full: 0.76,
            bandwidth_share: 1.0 / N_DEVICES as f64,
            compute_weight: 1.0,
            degrade: scalpel_sim::DegradeLadder::none(),
            fallback_servers: vec![],
        })
        .collect()
}

fn config(seed: u64, plan: FaultPlan) -> SimConfig {
    SimConfig {
        horizon_s: HORIZON_S,
        warmup_s: 1.0,
        seed,
        fading: true,
        faults: plan,
        recovery: scalpel_sim::RecoveryConfig::none(),
    }
}

/// Build a generated plan from a (seed, rate) pair — the strategy space of
/// the properties below; covers all fault classes and arbitrary overlap.
fn plan(fault_seed: u64, rate_tenths: u64) -> FaultPlan {
    FaultProfile {
        seed: fault_seed,
        rate_hz: rate_tenths as f64 / 10.0,
        mean_outage_s: 1.5,
        start_s: 0.0,
        classes: Vec::new(),
    }
    .plan(N_DEVICES, N_APS, N_SERVERS, HORIZON_S)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: generated == completed + stranded + stalled, for any
    /// fault schedule. Departed devices' in-flight requests are accounted,
    /// never silently dropped.
    #[test]
    fn faulted_runs_conserve_every_request(
        seed in 1u64..500,
        fault_seed in 1u64..500,
        rate_tenths in 1u64..12,
    ) {
        let p = plan(fault_seed, rate_tenths);
        let sim = EdgeSim::new(cluster(), streams(), config(seed, p.clone()))
            .expect("generated plans validate");
        let report = sim.run();
        prop_assert_eq!(
            report.generated,
            report.completed + report.faults.lost(),
            "plan had {} events", p.events.len()
        );
    }

    /// Metrics totals stay consistent: per-class counters sum to the
    /// aggregates, applied never exceeds injected, misses-during never
    /// exceed completions-during, and recovery times are non-negative.
    #[test]
    fn fault_metrics_totals_are_consistent(
        seed in 1u64..500,
        fault_seed in 1u64..500,
        rate_tenths in 1u64..12,
    ) {
        let sim = EdgeSim::new(
            cluster(),
            streams(),
            config(seed, plan(fault_seed, rate_tenths)),
        )
        .expect("valid");
        let f = sim.run().faults;
        prop_assert!(f.applied <= f.injected);
        prop_assert_eq!(f.per_class.len(), FaultClass::ALL.len());
        prop_assert_eq!(f.per_class.iter().map(|c| c.injected).sum::<usize>(), f.injected);
        prop_assert_eq!(f.per_class.iter().map(|c| c.applied).sum::<usize>(), f.applied);
        prop_assert_eq!(f.per_class.iter().map(|c| c.stranded).sum::<usize>(), f.stranded);
        for c in &f.per_class {
            prop_assert!(c.applied <= c.injected, "{:?}", c);
            // Misses under overlapping classes double-attribute, so each
            // class's count is bounded by the aggregate, not summed to it.
            prop_assert!(c.misses_during <= f.misses_during_fault, "{:?}", c);
        }
        prop_assert!(f.misses_during_fault <= f.completions_during_fault);
        prop_assert!(f.mean_recovery_s >= 0.0);
        prop_assert!((f.recoveries == 0) == (f.mean_recovery_s == 0.0));
    }

    /// Latencies, shares, and capacities stay physical under faults: every
    /// reported statistic is finite and non-negative, and throttled /
    /// degraded resources never go non-positive (which would hang or panic
    /// the event loop before reporting).
    #[test]
    fn faulted_reports_stay_physical(
        seed in 1u64..500,
        fault_seed in 1u64..500,
        rate_tenths in 1u64..12,
    ) {
        let sim = EdgeSim::new(
            cluster(),
            streams(),
            config(seed, plan(fault_seed, rate_tenths)),
        )
        .expect("valid");
        let report = sim.run();
        for v in [
            report.latency.mean,
            report.latency.p50,
            report.latency.p99,
            report.latency.max,
        ] {
            prop_assert!(v.is_finite() && v >= 0.0, "latency stat {v}");
        }
        for u in &report.server_utilization {
            prop_assert!((0.0..=1.0).contains(u), "utilization {u}");
        }
        prop_assert!(report.deadline_ratio >= 0.0 && report.deadline_ratio <= 1.0);
    }

    /// Determinism as a property: the same (sim seed, fault plan) pair is
    /// bit-identical; changing only the fault seed diverges whenever the
    /// two plans differ.
    #[test]
    fn fault_determinism_property(
        seed in 1u64..200,
        fault_seed in 1u64..200,
    ) {
        let p = plan(fault_seed, 8);
        let a = EdgeSim::new(cluster(), streams(), config(seed, p.clone()))
            .expect("valid")
            .run();
        let b = EdgeSim::new(cluster(), streams(), config(seed, p))
            .expect("valid")
            .run();
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.latency.mean, b.latency.mean);
        prop_assert_eq!(a.faults, b.faults);
        // A different fault seed always produces a different schedule
        // (run-level divergence is pinned in tests/determinism.rs).
        prop_assert_ne!(plan(fault_seed, 8), plan(fault_seed + 1000, 8));
    }
}
