//! Property-based equivalence of the timing-wheel event queue.
//!
//! The reference model is the structure the engine replaced: a naive
//! binary min-heap ordered by `(time, sequence)` in which cancelled
//! entries stay put and are skipped at pop time. Whatever interleaving
//! of schedules, cancellations and pops occurs — including bursts of
//! equal-timestamp entries, whose FIFO tie-break is part of the
//! contract — the wheel must deliver the exact same `(time, payload)`
//! sequence, no matter how events split between its in-window buckets
//! and its overflow list.

use proptest::prelude::*;
use scalpel_sim::rng::SimRng;
use scalpel_sim::{EventKey, EventQueue, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The naive heap the engine used to be: O(1) cancel via tombstone
/// flags, stale entries popped (and skipped) in order.
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payload: Vec<usize>,
    cancelled: Vec<bool>,
    delivered: Vec<bool>,
}

impl ReferenceQueue {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            payload: Vec::new(),
            cancelled: Vec::new(),
            delivered: Vec::new(),
        }
    }

    fn schedule(&mut self, at_nanos: u64, id: usize) -> u64 {
        let seq = self.payload.len() as u64;
        self.payload.push(id);
        self.cancelled.push(false);
        self.delivered.push(false);
        self.heap.push(Reverse((at_nanos, seq)));
        seq
    }

    /// Returns whether the entry was still live (mirrors `EventQueue::cancel`).
    fn cancel(&mut self, seq: u64) -> bool {
        let i = seq as usize;
        if self.cancelled[i] || self.delivered[i] {
            return false;
        }
        self.cancelled[i] = true;
        true
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            let i = seq as usize;
            if self.cancelled[i] {
                continue;
            }
            self.delivered[i] = true;
            return Some((at, self.payload[i]));
        }
        None
    }
}

/// One generated episode: `n_ops` operations drawn from `seed`, with
/// schedule times forced non-decreasing (so interleaved pops never make
/// the engine clamp a past timestamp, which the reference does not
/// model). `step_nanos` sets the timestamp granularity: 0–1 ns steps
/// pile everything into one wheel bucket (FIFO ties dominate), while
/// multi-millisecond steps scatter entries across buckets and past the
/// window edge into the overflow list.
fn run_episode(seed: u64, n_ops: usize, step_nanos: u64) -> (u64, u64) {
    let mut rng = SimRng::new(seed, 0);
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    // Parallel key tracking: keys[i] pairs the engine key with the
    // reference sequence number of the same logical event.
    let mut keys: Vec<(EventKey, u64)> = Vec::new();
    let mut t_nanos = 0u64;
    let mut next_id = 0usize;

    for _ in 0..n_ops {
        match rng.index(10) {
            // Schedule (common): hold the timestamp ~half the time so
            // FIFO tie-breaking is exercised constantly.
            0..=5 => {
                t_nanos += rng.index(2) as u64 * step_nanos.max(1);
                let key = queue.schedule(SimTime::from_nanos(t_nanos), next_id);
                let seq = reference.schedule(t_nanos, next_id);
                keys.push((key, seq));
                next_id += 1;
            }
            // Cancel a random previously issued key (may already be
            // cancelled or delivered — the verdicts must agree).
            6..=8 => {
                if !keys.is_empty() {
                    let (key, seq) = keys[rng.index(keys.len())];
                    assert_eq!(
                        queue.cancel(key),
                        reference.cancel(seq),
                        "cancel verdict diverged on seq {seq}"
                    );
                }
            }
            // Pop a short burst and compare deliveries.
            _ => {
                for _ in 0..rng.index(4) {
                    let got = queue.pop().map(|(at, id)| (at.as_nanos(), id));
                    assert_eq!(got, reference.pop(), "pop diverged mid-episode");
                }
            }
        }
    }
    // Drain both completely: every remaining live event, in order.
    loop {
        let got = queue.pop().map(|(at, id)| (at.as_nanos(), id));
        let want = reference.pop();
        assert_eq!(got, want, "pop diverged during drain");
        if got.is_none() {
            break;
        }
    }
    (queue.delivered(), queue.rotations())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-bucket regime: coarse 0/1 ns steps keep everything inside
    /// one wheel bucket, so the per-bucket min-extraction and FIFO
    /// tie-break carry the full ordering burden.
    #[test]
    fn wheel_matches_naive_heap_within_a_bucket(
        seed in 1u64..10_000,
        n_ops in 50usize..400,
    ) {
        let (delivered, _) = run_episode(seed, n_ops, 1);
        // Sanity: episodes actually deliver events, or the property
        // would pass vacuously.
        prop_assert!(delivered > 0 || n_ops < 60);
    }

    /// Scattered regime: ~20 ms steps spread entries across many buckets
    /// and regularly past the 268 ms window edge, so bucket hopping,
    /// overflow parking and wheel rotation are all on the hot path.
    #[test]
    fn wheel_matches_naive_heap_across_windows(
        seed in 1u64..10_000,
        n_ops in 50usize..400,
    ) {
        run_episode(seed, n_ops, 20_000_000);
    }
}

/// A cancel-heavy episode spanning several wheel windows — far-future
/// entries revoked before any pop can sweep their tombstones — must
/// still deliver the reference sequence: tombstones parked in overflow
/// are re-bucketed by rotations and swept in exact time order.
#[test]
fn heavy_cancellation_across_windows_stays_equivalent() {
    let mut rng = SimRng::new(9, 0);
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut reference = ReferenceQueue::new();
    let mut keys = Vec::new();
    for id in 0..500usize {
        // ~3.3 ms apart: 500 entries span ~1.7 s, several 268 ms windows.
        let at = (id as u64 / 3) * 10_000_000;
        keys.push((queue.schedule(SimTime::from_nanos(at), id), id as u64));
        reference.schedule(at, id);
    }
    let mut live: Vec<usize> = (0..keys.len()).collect();
    for _ in 0..420 {
        let (key, seq) = keys[live.swap_remove(rng.index(live.len()))];
        assert_eq!(queue.cancel(key), reference.cancel(seq));
    }
    loop {
        let got = queue.pop().map(|(at, id)| (at.as_nanos(), id));
        let want = reference.pop();
        assert_eq!(got, want, "post-rotation pop diverged");
        if got.is_none() {
            break;
        }
    }
    assert!(
        queue.rotations() > 0,
        "a 1.7 s spread never rotated the wheel: the overflow path is \
         untested and the property above is vacuous on it"
    );
}
