//! Property-based invariants of the recovery subsystem.
//!
//! Two laws anchor the layer. The breaker state machine is a one-way
//! ratchet per cycle: a tripped breaker can only return to service
//! through a half-open probe phase — never directly. And whatever the
//! combination of fault schedule and recovery posture, every measured
//! request is accounted: completed at full fidelity, completed degraded,
//! shed, stranded, or stalled.

use proptest::prelude::*;
use scalpel_models::{ExitBehavior, ProcessorClass};
use scalpel_sim::{
    ApSpec, ArrivalProcess, BreakerConfig, BreakerState, CircuitBreaker, Cluster, CompiledStream,
    DegradeLadder, DegradeRung, DeviceSpec, EdgeSim, FaultPlan, FaultProfile, RecoveryConfig,
    ServerSpec, SimConfig,
};

const N_DEVICES: usize = 3;
const N_APS: usize = 2;
const N_SERVERS: usize = 2;
const HORIZON_S: f64 = 8.0;

fn cluster() -> Cluster {
    Cluster {
        devices: (0..N_DEVICES)
            .map(|id| DeviceSpec {
                id,
                proc: ProcessorClass::JetsonNano.spec(),
                ap: id % N_APS,
                distance_m: 30.0,
            })
            .collect(),
        aps: (0..N_APS)
            .map(|id| ApSpec {
                id,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            })
            .collect(),
        servers: (0..N_SERVERS)
            .map(|id| ServerSpec {
                id,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            })
            .collect(),
    }
}

/// Offloaded streams with a two-rung ladder (a free forced exit and a
/// local finish) and a fallback server — every recovery mechanism has
/// something to act on.
fn streams() -> Vec<CompiledStream> {
    (0..N_DEVICES)
        .map(|d| CompiledStream {
            id: d,
            device: d,
            server: Some(d % N_SERVERS),
            arrivals: ArrivalProcess::Poisson { rate_hz: 3.0 },
            deadline_s: 0.25,
            device_time_to_exit: vec![0.002],
            device_full_time: 0.004,
            tx_bytes: 8e4,
            edge_flops: 5e8,
            behavior: ExitBehavior {
                exit_probs: vec![0.3],
                cum: vec![0.3],
                remain_prob: 0.7,
                expected_accuracy: 0.712,
            },
            acc_at_exit: vec![0.60],
            acc_full: 0.76,
            bandwidth_share: 1.0 / N_DEVICES as f64,
            compute_weight: 1.0,
            degrade: DegradeLadder::new(vec![
                DegradeRung {
                    exit: Some(0),
                    extra_device_s: 0.0,
                    accuracy: 0.60,
                },
                DegradeRung {
                    exit: None,
                    extra_device_s: 0.002,
                    accuracy: 0.74,
                },
            ]),
            fallback_servers: vec![(d + 1) % N_SERVERS],
        })
        .collect()
}

fn config(seed: u64, plan: FaultPlan, recovery: RecoveryConfig) -> SimConfig {
    SimConfig {
        horizon_s: HORIZON_S,
        warmup_s: 1.0,
        seed,
        fading: true,
        faults: plan,
        recovery,
    }
}

fn plan(fault_seed: u64, rate_tenths: u64) -> FaultPlan {
    FaultProfile {
        seed: fault_seed,
        rate_hz: rate_tenths as f64 / 10.0,
        mean_outage_s: 1.5,
        start_s: 0.0,
        classes: Vec::new(),
    }
    .plan(N_DEVICES, N_APS, N_SERVERS, HORIZON_S)
}

fn preset(idx: u64) -> RecoveryConfig {
    match idx % 4 {
        0 => RecoveryConfig::none(),
        1 => RecoveryConfig::retry_only(),
        2 => RecoveryConfig::retry_breaker(),
        _ => RecoveryConfig::full(),
    }
}

/// One step of the driver below: an acquire at a time, or an outcome.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    Acquire(f64),
    Success,
    Failure(f64),
}

/// Ops are generated as `(kind, centiseconds)` pairs with an integer
/// tag (predates the vendored proptest growing `prop_oneof!`).
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u64..3, 0u64..2000).prop_map(|(kind, cs)| {
        let t = cs as f64 / 100.0;
        match kind {
            0 => Op::Acquire(t),
            1 => Op::Success,
            _ => Op::Failure(t),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Driving a breaker with an arbitrary interleaving of acquires,
    /// successes, and failures (times monotonically ordered) never
    /// produces an Open → Closed transition without an intervening
    /// half-open probe phase, and the transition counters stay
    /// consistent with the observed history.
    #[test]
    fn breaker_never_closes_without_a_probe(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut brk = CircuitBreaker::new(BreakerConfig::default());
        // Sort the embedded times so the clock never runs backwards.
        let mut times: Vec<f64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Acquire(t) | Op::Failure(t) => Some(*t),
                Op::Success => None,
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let mut next_time = times.into_iter();
        let mut prev = brk.state();
        for op in &ops {
            match op {
                Op::Acquire(_) => {
                    brk.try_acquire(next_time.next().expect("one time per timed op"));
                }
                Op::Success => brk.record_success(),
                Op::Failure(_) => {
                    brk.record_failure(next_time.next().expect("one time per timed op"));
                }
            }
            let state = brk.state();
            prop_assert!(
                !(prev == BreakerState::Open && state == BreakerState::Closed),
                "breaker closed straight from open"
            );
            prev = state;
        }
        // Counter consistency: each close needs a half-open phase first,
        // and each half-open phase needs a preceding trip.
        prop_assert!(brk.closes <= brk.half_opens);
        prop_assert!(brk.half_opens <= brk.opens);
    }

    /// The breaker is a deterministic state machine: replaying the same
    /// op sequence reproduces the same state and counters.
    #[test]
    fn breaker_replay_is_deterministic(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let drive = |ops: &[Op]| {
            let mut brk = CircuitBreaker::new(BreakerConfig::default());
            for op in ops {
                match op {
                    Op::Acquire(t) => {
                        brk.try_acquire(*t);
                    }
                    Op::Success => brk.record_success(),
                    Op::Failure(t) => brk.record_failure(*t),
                }
            }
            (brk.state(), brk.opens, brk.half_opens, brk.closes)
        };
        prop_assert_eq!(drive(&ops), drive(&ops));
    }

    /// Conservation under recovery: whatever the fault schedule and
    /// posture, measured requests split exactly into full-fidelity
    /// completions, degraded completions, shed requests, and fault
    /// losses. Nothing is double-counted or silently dropped.
    #[test]
    fn recovered_runs_conserve_every_request(
        seed in 1u64..500,
        fault_seed in 1u64..500,
        rate_tenths in 1u64..12,
        preset_idx in 0u64..4,
    ) {
        let recovery = preset(preset_idx);
        let p = plan(fault_seed, rate_tenths);
        let report = EdgeSim::new(cluster(), streams(), config(seed, p.clone(), recovery))
            .expect("generated plans validate")
            .run();
        prop_assert_eq!(
            report.generated,
            report.accounted(),
            "completed {} degraded {} shed {} lost {} (plan had {} events)",
            report.completed,
            report.recovery.degraded,
            report.recovery.shed,
            report.faults.lost(),
            p.events.len()
        );
        // Degraded completions carry accuracy; the aggregate stays in
        // range and only exists when degradations happened.
        prop_assert!(report.recovery.mean_degraded_accuracy >= 0.0);
        prop_assert!(report.recovery.mean_degraded_accuracy <= 1.0);
        if report.recovery.degraded == 0 {
            prop_assert_eq!(report.recovery.mean_degraded_accuracy, 0.0);
        }
    }

    /// Recovery keeps the simulation deterministic: identical (seed,
    /// plan, posture) triples reproduce bit-identical reports.
    #[test]
    fn recovered_runs_are_deterministic(
        seed in 1u64..200,
        fault_seed in 1u64..200,
        preset_idx in 0u64..4,
    ) {
        let recovery = preset(preset_idx);
        let p = plan(fault_seed, 8);
        let run = || {
            EdgeSim::new(cluster(), streams(), config(seed, p.clone(), recovery.clone()))
                .expect("valid")
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.latency.mean, b.latency.mean);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.recovery, b.recovery);
    }
}
