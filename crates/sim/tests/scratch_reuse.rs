//! Scratch reuse is observation-free: a [`SimScratch`] that has already
//! simulated other seeds (or other postures) must produce bit-for-bit
//! the report and trace a fresh scratch would. Anything less means run
//! state leaked across `reset` — the one failure mode that would make
//! the optimizer's per-worker scratch reuse unsound.

use scalpel_models::{ExitBehavior, ProcessorClass};
use scalpel_sim::{
    ApSpec, ArrivalProcess, Cluster, CompiledStream, DeviceSpec, EdgeSim, FaultProfile,
    RecoveryConfig, RunTrace, ServerSpec, SimConfig, SimReport, SimScratch,
};

const N_DEVICES: usize = 3;
const N_APS: usize = 2;
const N_SERVERS: usize = 2;
const HORIZON_S: f64 = 8.0;

fn cluster() -> Cluster {
    Cluster {
        devices: (0..N_DEVICES)
            .map(|id| DeviceSpec {
                id,
                proc: ProcessorClass::JetsonNano.spec(),
                ap: id % N_APS,
                distance_m: 30.0,
            })
            .collect(),
        aps: (0..N_APS)
            .map(|id| ApSpec {
                id,
                bandwidth_hz: 20e6,
                rtt_s: 2e-3,
            })
            .collect(),
        servers: (0..N_SERVERS)
            .map(|id| ServerSpec {
                id,
                proc: ProcessorClass::EdgeGpuT4.spec(),
            })
            .collect(),
    }
}

fn streams() -> Vec<CompiledStream> {
    (0..N_DEVICES)
        .map(|d| CompiledStream {
            id: d,
            device: d,
            server: Some(d % N_SERVERS),
            arrivals: ArrivalProcess::Poisson { rate_hz: 3.0 },
            deadline_s: 0.25,
            device_time_to_exit: vec![],
            device_full_time: 0.004,
            tx_bytes: 8e4,
            edge_flops: 5e8,
            behavior: ExitBehavior::no_exits(0.76),
            acc_at_exit: vec![],
            acc_full: 0.76,
            bandwidth_share: 1.0 / N_DEVICES as f64,
            compute_weight: 1.0,
            degrade: scalpel_sim::DegradeLadder::none(),
            fallback_servers: vec![],
        })
        .collect()
}

/// A faulted, fully-recovered posture: exercises the breakers, retry
/// watchdogs and shed/degrade paths that keep the most per-run state.
fn config(seed: u64) -> SimConfig {
    SimConfig {
        horizon_s: HORIZON_S,
        warmup_s: 1.0,
        seed,
        fading: true,
        faults: FaultProfile {
            seed: 5,
            rate_hz: 0.8,
            mean_outage_s: 1.5,
            start_s: 0.5,
            classes: Vec::new(),
        }
        .plan(N_DEVICES, N_APS, N_SERVERS, HORIZON_S),
        recovery: RecoveryConfig::full(),
    }
}

fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.generated, b.generated, "{what}: generated");
    assert_eq!(a.completed, b.completed, "{what}: completed");
    assert_eq!(a.latency.count, b.latency.count, "{what}: latency count");
    assert_eq!(
        a.latency.mean.to_bits(),
        b.latency.mean.to_bits(),
        "{what}: latency mean"
    );
    assert_eq!(
        a.latency.p99.to_bits(),
        b.latency.p99.to_bits(),
        "{what}: latency p99"
    );
    assert_eq!(
        a.deadline_ratio.to_bits(),
        b.deadline_ratio.to_bits(),
        "{what}: deadline ratio"
    );
    assert_eq!(
        a.mean_accuracy.to_bits(),
        b.mean_accuracy.to_bits(),
        "{what}: mean accuracy"
    );
    for (i, (p, q)) in a
        .server_utilization
        .iter()
        .zip(&b.server_utilization)
        .enumerate()
    {
        assert_eq!(p.to_bits(), q.to_bits(), "{what}: utilization[{i}]");
    }
    assert_eq!(a.per_stream.len(), b.per_stream.len(), "{what}: streams");
    for (p, q) in a.per_stream.iter().zip(&b.per_stream) {
        assert_eq!(p.completed, q.completed, "{what}: stream completed");
        assert_eq!(
            p.latency.mean.to_bits(),
            q.latency.mean.to_bits(),
            "{what}: stream latency"
        );
        assert_eq!(
            p.mean_device_wait.to_bits(),
            q.mean_device_wait.to_bits(),
            "{what}: stream wait"
        );
    }
    assert_eq!(a.faults, b.faults, "{what}: fault metrics");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery metrics");
}

fn assert_traces_identical(a: &RunTrace, b: &RunTrace, what: &str) {
    assert_eq!(a.tasks.len(), b.tasks.len(), "{what}: task count");
    for (i, (p, q)) in a.tasks.iter().zip(&b.tasks).enumerate() {
        assert_eq!(p.stream, q.stream, "{what}: task[{i}] stream");
        assert_eq!(p.exit, q.exit, "{what}: task[{i}] exit");
        for (n, (x, y)) in [
            (p.arrival_s, q.arrival_s),
            (p.device_wait_s, q.device_wait_s),
            (p.device_service_s, q.device_service_s),
            (p.tx_s, q.tx_s),
            (p.edge_s, q.edge_s),
            (p.latency_s, q.latency_s),
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: task[{i}] field {n} diverged"
            );
        }
    }
    assert_eq!(a.faults, b.faults, "{what}: fault records");
    assert_eq!(a.health, b.health, "{what}: health snapshots");
}

/// Seeds {a, b} through one shared scratch — including re-running seed
/// `a` after `b` has dirtied every buffer — match fresh-scratch runs
/// bit-for-bit, reports and full trace logs alike.
#[test]
fn reused_scratch_runs_match_fresh_runs_across_seeds() {
    let (seed_a, seed_b) = (41, 42);
    let sim_a = EdgeSim::new(cluster(), streams(), config(seed_a)).expect("valid");
    let sim_b = EdgeSim::new(cluster(), streams(), config(seed_b)).expect("valid");
    let (fresh_a, trace_a) = sim_a.run_logged();
    let (fresh_b, trace_b) = sim_b.run_logged();
    // The two seeds must actually diverge, or reuse equality is vacuous.
    assert_ne!(
        trace_a.tasks.len() + trace_a.faults.len(),
        0,
        "seed {seed_a} produced an empty run"
    );

    let mut scratch = SimScratch::new();
    let (r1, t1) = sim_a.run_logged_with_scratch(&mut scratch);
    assert_reports_identical(&fresh_a, &r1, "seed a, warm-up pass");
    assert_traces_identical(&trace_a, &t1, "seed a, warm-up pass");

    let (r2, t2) = sim_b.run_logged_with_scratch(&mut scratch);
    assert_reports_identical(&fresh_b, &r2, "seed b after seed a");
    assert_traces_identical(&trace_b, &t2, "seed b after seed a");

    let (r3, t3) = sim_a.run_logged_with_scratch(&mut scratch);
    assert_reports_identical(&fresh_a, &r3, "seed a after seed b");
    assert_traces_identical(&trace_a, &t3, "seed a after seed b");
}

/// An un-logged reused-scratch run agrees with `EdgeSim::run`, and the
/// logging flag itself leaves no residue in the scratch.
#[test]
fn logging_leaves_no_residue_in_reused_scratch() {
    let sim = EdgeSim::new(cluster(), streams(), config(7)).expect("valid");
    let fresh = sim.run();
    let mut scratch = SimScratch::new();
    let (_, logged_trace) = sim.run_logged_with_scratch(&mut scratch);
    assert!(
        !logged_trace.tasks.is_empty(),
        "logged run recorded nothing"
    );
    let unlogged = sim.run_with_scratch(&mut scratch);
    assert_reports_identical(&fresh, &unlogged, "unlogged after logged");
}
