//! Property-based invariants of the discrete-event simulator.

use proptest::prelude::*;
use scalpel_models::{ExitBehavior, ProcessorClass};
use scalpel_sim::{
    ApSpec, ArrivalProcess, Cluster, CompiledStream, DeviceSpec, EdgeSim, ServerSpec, SimConfig,
};

fn cluster(n_devices: usize) -> Cluster {
    Cluster {
        devices: (0..n_devices)
            .map(|id| DeviceSpec {
                id,
                proc: ProcessorClass::JetsonNano.spec(),
                ap: 0,
                distance_m: 30.0,
            })
            .collect(),
        aps: vec![ApSpec {
            id: 0,
            bandwidth_hz: 20e6,
            rtt_s: 2e-3,
        }],
        servers: vec![ServerSpec {
            id: 0,
            proc: ProcessorClass::EdgeGpuT4.spec(),
        }],
    }
}

/// A random *stable* stream (light utilization by construction).
fn stream_strategy(id: usize, n_devices: usize) -> impl Strategy<Value = CompiledStream> {
    (
        0.5f64..3.0,       // arrival rate
        0.0005f64..0.01,   // device full time
        1e7f64..5e9,       // edge flops
        1e4f64..2e5,       // tx bytes
        0.0f64..0.6,       // exit probability
        0usize..n_devices, // device
    )
        .prop_map(move |(rate, dev_t, edge, tx, exit_p, device)| {
            let behavior = if exit_p > 0.0 {
                ExitBehavior {
                    exit_probs: vec![exit_p],
                    cum: vec![exit_p],
                    remain_prob: 1.0 - exit_p,
                    expected_accuracy: 0.75,
                }
            } else {
                ExitBehavior::no_exits(0.76)
            };
            CompiledStream {
                id,
                device,
                server: Some(0),
                arrivals: ArrivalProcess::Poisson { rate_hz: rate },
                deadline_s: 0.25,
                device_time_to_exit: if exit_p > 0.0 {
                    vec![dev_t * 0.4]
                } else {
                    vec![]
                },
                device_full_time: dev_t,
                tx_bytes: tx,
                edge_flops: edge,
                acc_at_exit: if exit_p > 0.0 { vec![0.73] } else { vec![] },
                acc_full: 0.76,
                behavior,
                bandwidth_share: 1.0 / n_devices as f64,
                compute_weight: 1.0,
                degrade: scalpel_sim::DegradeLadder::none(),
                fallback_servers: vec![],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: under stable load every measured request completes,
    /// latencies are at least the raw service time, and accuracy values
    /// stay within the configured band.
    #[test]
    fn conservation_and_bounds(
        seed in 1u64..1000,
        streams in prop::collection::vec(stream_strategy(0, 3), 1..4),
    ) {
        let streams: Vec<CompiledStream> = streams
            .into_iter()
            .enumerate()
            .map(|(i, mut s)| {
                s.id = i;
                s
            })
            .collect();
        let sim = EdgeSim::new(
            cluster(3),
            streams.clone(),
            SimConfig {
                horizon_s: 8.0,
                warmup_s: 1.0,
                seed,
                fading: true,
                ..SimConfig::default()
            },
        )
        .expect("valid streams");
        let (report, trace) = sim.run_traced();
        prop_assert_eq!(report.completed, report.generated);
        prop_assert_eq!(trace.len(), report.completed);
        for r in &trace {
            let s = &streams[r.stream];
            let min_service = match r.exit {
                Some(i) => s.device_time_to_exit[i],
                None => s.device_full_time,
            };
            prop_assert!(r.latency_s + 1e-9 >= min_service,
                "latency {} below service {}", r.latency_s, min_service);
        }
        if report.completed > 0 {
            prop_assert!(report.mean_accuracy >= 0.72 && report.mean_accuracy <= 0.77);
        }
    }

    /// Determinism as a property: any stream set + seed reproduces.
    #[test]
    fn determinism_property(
        seed in 1u64..500,
        s in stream_strategy(0, 1),
    ) {
        let cfg = SimConfig {
            horizon_s: 5.0,
            warmup_s: 0.5,
            seed,
            fading: true,
            ..SimConfig::default()
        };
        let a = EdgeSim::new(cluster(1), vec![s.clone()], cfg.clone())
            .expect("valid")
            .run();
        let b = EdgeSim::new(cluster(1), vec![s], cfg).expect("valid").run();
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.latency.mean, b.latency.mean);
    }
}
