//! Candidate-plan generation: the per-stream plan menu the joint optimizer
//! searches over.
//!
//! For every (downsampled) cut × pruning level, the exit-setting DP picks
//! the best exits under a *reference environment* (the stream's device
//! speed and its fair-share transmission/edge rates); the resulting plans
//! are then reduced to the Pareto frontier over the environment-independent
//! demand vector, because dominated plans cannot win under any allocation.

use crate::exit_setting::{self, ExitCandidate, ExitSettingProblem};
use crate::partition::candidate_cuts;
use crate::plan::SurgeryPlan;
use crate::pruning::PruneLevel;
use scalpel_models::{DifficultyModel, ExitBehavior, ExitHead, ModelGraph};
use serde::{Deserialize, Serialize};

/// The environment the exit-setting DP prices a plan in: the stream's own
/// device plus its *planned* (fair-share) transmission and edge rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceEnv {
    /// Seconds per FLOP on the stream's device.
    pub device_sec_per_flop: f64,
    /// Seconds per byte on the uplink at the planned bandwidth share.
    pub tx_sec_per_byte: f64,
    /// Seconds per FLOP on the edge at the planned compute share.
    pub edge_sec_per_flop: f64,
    /// AP round-trip time, seconds.
    pub rtt_s: f64,
}

/// Knobs of the candidate generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateConfig {
    /// Maximum cut boundaries to consider per model.
    pub max_cuts: usize,
    /// Maximum exits per plan.
    pub max_exits: usize,
    /// Maximum exit hosts offered to the DP per cut.
    pub max_hosts: usize,
    /// Accuracy floor every plan must respect.
    pub accuracy_floor: f64,
    /// Full-model accuracy (before pruning).
    pub acc_full: f64,
    /// Pruning levels to consider.
    pub prune_levels: Vec<PruneLevel>,
    /// Whether int8-quantized transmission variants are offered.
    pub allow_quantize: bool,
    /// Difficulty calibration.
    pub difficulty: DifficultyModel,
    /// Exit-threshold sweep.
    pub threshold_grid: Vec<f64>,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        Self {
            max_cuts: 6,
            max_exits: 3,
            max_hosts: 8,
            accuracy_floor: 0.74,
            acc_full: 0.76,
            prune_levels: vec![PruneLevel::None, PruneLevel::Medium],
            allow_quantize: true,
            difficulty: DifficultyModel::default(),
            threshold_grid: ExitSettingProblem::default_grid(),
        }
    }
}

/// Environment-independent demand summary of a plan (what the joint
/// optimizer and the Pareto filter consume).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanProfile {
    /// Expected device FLOPs per request (exit-weighted prefix + heads,
    /// pruning applied).
    pub expected_device_flops: f64,
    /// Device FLOPs when no exit fires (full pruned prefix + all heads).
    pub device_flops_full: f64,
    /// Per-exit cumulative device FLOPs (ascending; pruned backbone +
    /// heads through each exit).
    pub device_flops_to_exit: Vec<f64>,
    /// Bytes crossing the cut for a non-exiting request.
    pub tx_bytes: f64,
    /// Edge FLOPs for a non-exiting request.
    pub edge_flops: f64,
    /// Probability a request reaches the edge.
    pub remain_prob: f64,
    /// Exit behavior (device-side exits only).
    pub behavior: ExitBehavior,
    /// Conditional accuracy of each exit.
    pub acc_at_exit: Vec<f64>,
    /// Accuracy of the full path (pruning applied).
    pub acc_full: f64,
    /// Expected accuracy over all paths.
    pub expected_accuracy: f64,
    /// Expected latency under the reference environment (for reporting;
    /// the optimizer re-prices under actual allocations).
    pub reference_latency_s: f64,
}

impl PlanProfile {
    /// The demand vector the Pareto filter minimizes.
    pub fn demand_vector(&self) -> Vec<f64> {
        vec![
            self.expected_device_flops,
            self.tx_bytes * self.remain_prob,
            self.edge_flops * self.remain_prob,
            -self.expected_accuracy,
        ]
    }
}

/// A surgery plan together with its demand profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidatePlan {
    /// The plan.
    pub plan: SurgeryPlan,
    /// Its profile.
    pub profile: PlanProfile,
}

/// Build the profile of an explicit plan under `cfg` (used both by the
/// generator and by baselines that construct plans by hand).
pub fn profile_plan(model: &ModelGraph, plan: &SurgeryPlan, cfg: &CandidateConfig) -> PlanProfile {
    let classes = model.output_shape().c;
    let scale = plan.prune.flops_scale();
    let quant_cost = if plan.quantize_tx && plan.cut < model.len() {
        crate::plan::QUANTIZE_TX_ACC_COST
    } else {
        0.0
    };
    let acc_full = (cfg.acc_full - plan.prune.accuracy_cost() - quant_cost).max(0.0);
    let exit_profile: Vec<(f64, f64)> = plan
        .exits
        .iter()
        .map(|&(host, t)| (model.depth_fraction(host + 1), t))
        .collect();
    let behavior = if exit_profile.is_empty() {
        ExitBehavior::no_exits(acc_full)
    } else {
        let mut b = cfg.difficulty.behavior(&exit_profile);
        // behavior() uses cfg.difficulty.acc_full internally for the tail;
        // rebuild expected accuracy with the pruned full-path accuracy.
        b.expected_accuracy = b.remain_prob * acc_full
            + exit_profile
                .iter()
                .zip(&b.exit_probs)
                .map(|(&(x, t), &p)| p * cfg.difficulty.conditional_accuracy(x, t))
                .sum::<f64>();
        b
    };
    let acc_at_exit: Vec<f64> = exit_profile
        .iter()
        .map(|&(x, t)| cfg.difficulty.conditional_accuracy(x, t))
        .collect();
    let mut device_flops_to_exit = Vec::with_capacity(plan.exits.len());
    let mut heads_so_far = 0.0;
    for &(host, _) in &plan.exits {
        let head = ExitHead::standard(model.shape(host), classes);
        heads_so_far += head.flops as f64;
        device_flops_to_exit.push(model.prefix_flops(host + 1) as f64 * scale + heads_so_far);
    }
    let device_flops_full = model.prefix_flops(plan.cut) as f64 * scale + heads_so_far;
    let mut tx_bytes = model.crossing_bytes(plan.cut) as f64;
    if plan.quantize_tx {
        tx_bytes /= crate::plan::QUANTIZE_TX_SHRINK;
    }
    let edge_flops = model.suffix_flops(plan.cut) as f64;
    let mut expected_device_flops = behavior.remain_prob * device_flops_full;
    for (i, &p) in behavior.exit_probs.iter().enumerate() {
        expected_device_flops += p * device_flops_to_exit[i];
    }
    PlanProfile {
        expected_device_flops,
        device_flops_full,
        device_flops_to_exit,
        tx_bytes,
        edge_flops,
        remain_prob: behavior.remain_prob,
        acc_at_exit,
        acc_full,
        expected_accuracy: behavior.expected_accuracy,
        behavior,
        reference_latency_s: 0.0,
    }
}

/// Price a profile's expected latency under an environment (no queueing).
pub fn reference_latency(profile: &PlanProfile, env: &ReferenceEnv) -> f64 {
    let mut lat = 0.0;
    for (i, &p) in profile.behavior.exit_probs.iter().enumerate() {
        lat += p * profile.device_flops_to_exit[i] * env.device_sec_per_flop;
    }
    let rest = if profile.edge_flops > 0.0 || profile.tx_bytes > 0.0 {
        profile.tx_bytes * env.tx_sec_per_byte
            + env.rtt_s / 2.0
            + profile.edge_flops * env.edge_sec_per_flop
    } else {
        0.0
    };
    lat +=
        profile.behavior.remain_prob * (profile.device_flops_full * env.device_sec_per_flop + rest);
    lat
}

/// Generate the candidate menu for one (model, environment) pair.
pub fn generate(
    model: &ModelGraph,
    env: &ReferenceEnv,
    cfg: &CandidateConfig,
) -> Vec<CandidatePlan> {
    let cuts = candidate_cuts(model, cfg.max_cuts);
    let interior: Vec<usize> = cuts
        .iter()
        .map(|c| c.boundary)
        .filter(|&b| b != 0 && b != model.len())
        .collect();
    let classes = model.output_shape().c;
    let mut out: Vec<CandidatePlan> = Vec::new();
    for cut in &cuts {
        for &prune in &cfg.prune_levels {
            // Pruning a nonexistent prefix is meaningless.
            if cut.boundary == 0 && prune != PruneLevel::None {
                continue;
            }
            let scale = prune.flops_scale();
            let acc_full = (cfg.acc_full - prune.accuracy_cost()).max(0.0);
            // Exit hosts: interior single-tensor boundaries inside the prefix.
            let mut hosts: Vec<ExitCandidate> = interior
                .iter()
                .filter(|&&b| b < cut.boundary)
                .map(|&b| {
                    let host = b - 1;
                    let head = ExitHead::standard(model.shape(host), classes);
                    ExitCandidate {
                        node: host,
                        depth_fraction: model.depth_fraction(b),
                        time_to_host_s: model.prefix_flops(b) as f64
                            * scale
                            * env.device_sec_per_flop,
                        head_time_s: head.flops as f64 * env.device_sec_per_flop,
                    }
                })
                .collect();
            hosts.truncate(cfg.max_hosts);
            let rest_time_s = if cut.boundary == model.len() {
                0.0
            } else {
                model.crossing_bytes(cut.boundary) as f64 * env.tx_sec_per_byte
                    + env.rtt_s / 2.0
                    + model.suffix_flops(cut.boundary) as f64 * env.edge_sec_per_flop
            };
            let problem = ExitSettingProblem {
                hosts: hosts.clone(),
                full_prefix_time_s: model.prefix_flops(cut.boundary) as f64
                    * scale
                    * env.device_sec_per_flop,
                rest_time_s,
                max_exits: cfg.max_exits,
                accuracy_floor: cfg.accuracy_floor,
                acc_full,
                difficulty: cfg.difficulty.clone(),
                threshold_grid: cfg.threshold_grid.clone(),
            };
            let sol = exit_setting::solve(&problem);
            // Per-exit threshold refinement on top of the uniform-threshold
            // DP solution (never worse; see exit_setting::refine_thresholds).
            let (thresholds, _, _) = exit_setting::refine_thresholds(&problem, &sol);
            let base_plan = SurgeryPlan {
                cut: cut.boundary,
                exits: sol
                    .selected
                    .iter()
                    .zip(&thresholds)
                    .map(|(&i, &t)| (hosts[i].node, t))
                    .collect(),
                prune,
                quantize_tx: false,
            };
            if base_plan.validate(model).is_err() {
                continue;
            }
            // Offer, besides the DP-chosen exits: the exit-free variant
            // (what Neurosurgeon-style static partitioning uses — higher
            // accuracy, more compute, so it survives the Pareto filter)
            // and the int8-transmission variants. The filter keeps
            // whichever versions can win.
            let mut variants = vec![base_plan.clone()];
            if !base_plan.exits.is_empty() {
                let mut plain = base_plan.clone();
                plain.exits.clear();
                variants.push(plain);
            }
            if cfg.allow_quantize
                && cut.boundary < model.len()
                && model.crossing_bytes(cut.boundary) > 0
            {
                for i in 0..variants.len() {
                    let mut q = variants[i].clone();
                    q.quantize_tx = true;
                    variants.push(q);
                }
            }
            for plan in variants {
                let mut profile = profile_plan(model, &plan, cfg);
                // Enforce the accuracy floor on the final profile as well.
                if profile.expected_accuracy + 1e-9 < cfg.accuracy_floor {
                    continue;
                }
                profile.reference_latency_s = reference_latency(&profile, env);
                out.push(CandidatePlan { plan, profile });
            }
        }
    }
    // The menu can legitimately come out empty (e.g. an accuracy floor no
    // plan can clear); callers surface that as a typed validation error
    // rather than asserting here.
    crate::pareto::pareto_filter(out, |c| c.profile.demand_vector())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalpel_models::zoo;

    fn env() -> ReferenceEnv {
        ReferenceEnv {
            device_sec_per_flop: 1.0 / 25.0e9, // phone-class
            tx_sec_per_byte: 8.0 / 50e6,       // 50 Mbit/s
            edge_sec_per_flop: 1.0 / 1.0e12,   // shared T4-class slice
            rtt_s: 2e-3,
        }
    }

    #[test]
    fn menu_is_nonempty_and_valid_for_every_model() {
        let cfg = CandidateConfig::default();
        for g in zoo::standard_zoo() {
            let menu = generate(&g, &env(), &cfg);
            assert!(!menu.is_empty(), "{}", g.name());
            for c in &menu {
                assert!(c.plan.validate(&g).is_ok(), "{}", g.name());
                assert!(c.profile.expected_accuracy + 1e-9 >= cfg.accuracy_floor);
                assert!(c.profile.reference_latency_s > 0.0);
            }
        }
    }

    #[test]
    fn menu_is_pareto_minimal() {
        let cfg = CandidateConfig::default();
        let g = zoo::alexnet(1000);
        let menu = generate(&g, &env(), &cfg);
        for a in &menu {
            for b in &menu {
                if a.plan != b.plan {
                    assert!(!crate::pareto::dominates(
                        &a.profile.demand_vector(),
                        &b.profile.demand_vector()
                    ));
                }
            }
        }
    }

    #[test]
    fn profile_of_device_only_plan_has_no_edge_demand() {
        let cfg = CandidateConfig::default();
        let g = zoo::lenet5(10);
        let mut cfg10 = cfg.clone();
        cfg10.acc_full = 0.99;
        cfg10.accuracy_floor = 0.0;
        let plan = SurgeryPlan::device_only(&g);
        let p = profile_plan(&g, &plan, &cfg10);
        assert_eq!(p.tx_bytes, 0.0);
        assert_eq!(p.edge_flops, 0.0);
        assert_eq!(p.remain_prob, 1.0);
        assert!((p.device_flops_full - g.total_flops() as f64).abs() < 1.0);
    }

    #[test]
    fn profile_of_full_offload_has_no_device_flops() {
        let cfg = CandidateConfig::default();
        let g = zoo::alexnet(1000);
        let p = profile_plan(&g, &SurgeryPlan::full_offload(), &cfg);
        assert_eq!(p.expected_device_flops, 0.0);
        assert!((p.edge_flops - g.total_flops() as f64).abs() < 1.0);
        assert!(p.tx_bytes > 0.0);
    }

    #[test]
    fn pruning_reduces_device_flops_and_accuracy() {
        let cfg = CandidateConfig::default();
        let g = zoo::alexnet(1000);
        let cut = 8;
        let none = profile_plan(&g, &SurgeryPlan::partition(cut), &cfg);
        let pruned = profile_plan(
            &g,
            &SurgeryPlan {
                cut,
                exits: vec![],
                prune: PruneLevel::Medium,
                quantize_tx: false,
            },
            &cfg,
        );
        assert!(pruned.device_flops_full < none.device_flops_full);
        assert!(pruned.expected_accuracy < none.expected_accuracy);
        // Edge demand untouched by pruning.
        assert_eq!(pruned.edge_flops, none.edge_flops);
    }

    #[test]
    fn exits_reduce_expected_edge_traffic() {
        let cfg = CandidateConfig {
            accuracy_floor: 0.70,
            ..Default::default()
        };
        let g = zoo::alexnet(1000);
        let plain = profile_plan(&g, &SurgeryPlan::partition(8), &cfg);
        let with_exit = profile_plan(
            &g,
            &SurgeryPlan {
                cut: 8,
                exits: vec![(3, 0.8)],
                prune: PruneLevel::None,
                quantize_tx: false,
            },
            &cfg,
        );
        assert!(with_exit.remain_prob < plain.remain_prob);
        assert!(with_exit.tx_bytes * with_exit.remain_prob < plain.tx_bytes * plain.remain_prob);
    }

    #[test]
    fn reference_latency_weights_paths() {
        let cfg = CandidateConfig {
            accuracy_floor: 0.0,
            ..Default::default()
        };
        let g = zoo::alexnet(1000);
        let p = profile_plan(
            &g,
            &SurgeryPlan {
                cut: 8,
                exits: vec![(3, 0.7)],
                prune: PruneLevel::None,
                quantize_tx: false,
            },
            &cfg,
        );
        let lat = reference_latency(&p, &env());
        // must be between the fastest exit path and the slowest full path
        let fastest = p.device_flops_to_exit[0] * env().device_sec_per_flop;
        let slowest = p.device_flops_full * env().device_sec_per_flop
            + p.tx_bytes * env().tx_sec_per_byte
            + 1e-3
            + p.edge_flops * env().edge_sec_per_flop;
        assert!(
            lat > fastest && lat < slowest,
            "{fastest} < {lat} < {slowest}"
        );
    }

    #[test]
    fn quantized_variant_shrinks_bytes_and_costs_accuracy() {
        let cfg = CandidateConfig::default();
        let g = zoo::alexnet(1000);
        let plain = profile_plan(&g, &SurgeryPlan::partition(8), &cfg);
        let mut qplan = SurgeryPlan::partition(8);
        qplan.quantize_tx = true;
        let quant = profile_plan(&g, &qplan, &cfg);
        assert!((quant.tx_bytes - plain.tx_bytes / 4.0).abs() < 1.0);
        assert!(quant.expected_accuracy < plain.expected_accuracy);
        assert_eq!(quant.edge_flops, plain.edge_flops);
    }

    #[test]
    fn quantization_is_a_noop_for_device_only_plans() {
        let cfg = CandidateConfig::default();
        let g = zoo::lenet5(10);
        let mut plan = SurgeryPlan::device_only(&g);
        plan.quantize_tx = true;
        let p = profile_plan(&g, &plan, &cfg);
        // no bytes cross, and no accuracy penalty applies
        assert_eq!(p.tx_bytes, 0.0);
        assert!((p.acc_full - cfg.acc_full).abs() < 1e-12);
    }

    #[test]
    fn generator_offers_exit_free_variants() {
        let cfg = CandidateConfig::default();
        for g in [zoo::alexnet(1000), zoo::resnet18(1000)] {
            let menu = generate(&g, &env(), &cfg);
            // A pure device-only plan (no exits, no quantization) must be
            // available for the DeviceOnly baseline...
            assert!(
                menu.iter().any(|c| c.plan.cut == g.len()
                    && c.plan.exits.is_empty()
                    && !c.plan.quantize_tx),
                "{}: no pure device-only plan",
                g.name()
            );
            // ...and at least one *interior* exit-free plan for
            // Neurosurgeon-style static partitioning.
            assert!(
                menu.iter()
                    .any(|c| c.plan.cut != 0 && c.plan.cut != g.len() && c.plan.exits.is_empty()),
                "{}: no interior exit-free plan",
                g.name()
            );
        }
    }

    #[test]
    fn generator_offers_quantized_plans_when_allowed() {
        let cfg = CandidateConfig::default();
        let g = zoo::alexnet(1000);
        let menu = generate(&g, &env(), &cfg);
        assert!(
            menu.iter().any(|c| c.plan.quantize_tx),
            "no quantized plan survived Pareto filtering"
        );
        let mut no_q = cfg.clone();
        no_q.allow_quantize = false;
        let menu = generate(&g, &env(), &no_q);
        assert!(menu.iter().all(|c| !c.plan.quantize_tx));
    }

    #[test]
    fn menu_contains_the_two_extremes_or_something_dominating_them() {
        // The generator always evaluates boundaries 0 and n; they can only
        // be absent if something dominates them, which cannot happen for
        // device-only (unique zero edge demand) unless another plan has
        // zero edge demand too.
        let cfg = CandidateConfig::default();
        let g = zoo::mobilenet_v2(1000);
        let menu = generate(&g, &env(), &cfg);
        assert!(menu
            .iter()
            .any(|c| c.profile.remain_prob * c.profile.edge_flops == 0.0 || c.plan.cut == g.len()));
    }
}
