//! Graceful-degradation ladders derived from surgery plans.
//!
//! When a stream's offload path is unhealthy (AP outage, dead server) or a
//! request's remaining deadline slack cannot cover transmission + edge
//! compute, the runtime does not have to strand the request: every
//! offloaded [`SurgeryPlan`] implies a ladder of *degraded completion
//! modes* that trade accuracy for independence from the network.
//!
//! Two kinds of rung exist:
//!
//! * **Forced exit** — the request leaves at a device-side early exit even
//!   though its confidence gate did not fire. The exit head outputs were
//!   already computed on the way through the prefix, so this costs zero
//!   extra device seconds; it costs accuracy (the exit's conditional
//!   accuracy minus [`FORCED_EXIT_ACC_COST`], because the gate firing is
//!   itself evidence the sample was easy).
//! * **Local finish** — the device runs the remaining suffix itself,
//!   completing the full model without the network at full-model accuracy.
//!   This costs the device-only execution time beyond the prefix it has
//!   already spent.
//!
//! A ladder is sorted best-accuracy-first, so pick-the-first-that-fits is
//! the optimal deadline-aware choice.

use crate::plan::SurgeryPlan;
use serde::{Deserialize, Serialize};

/// Accuracy haircut applied when an early exit is *forced* (its confidence
/// gate did not fire): samples that fail the gate are disproportionately
/// hard, so the exit's conditional accuracy overstates what a forced
/// emission achieves.
pub const FORCED_EXIT_ACC_COST: f64 = 0.01;

/// One degraded completion mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeRung {
    /// Device-side exit to force (`None` = finish the full model locally).
    pub exit: Option<usize>,
    /// Extra device compute seconds beyond the prefix already executed.
    pub extra_device_s: f64,
    /// Accuracy credited to a request completing at this rung.
    pub accuracy: f64,
}

/// A stream's degradation options, best accuracy first.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradeLadder {
    /// Rungs sorted by descending accuracy (ties: cheapest first).
    pub rungs: Vec<DegradeRung>,
}

impl DegradeLadder {
    /// The empty ladder (no degraded completion possible — e.g. a
    /// device-only plan, which never needs one).
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from unordered rungs; sorts best-accuracy-first.
    pub fn new(mut rungs: Vec<DegradeRung>) -> Self {
        rungs.sort_by(|a, b| {
            b.accuracy
                .total_cmp(&a.accuracy)
                .then(a.extra_device_s.total_cmp(&b.extra_device_s))
        });
        Self { rungs }
    }

    /// Whether the ladder offers no rung.
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// The most accurate rung whose extra device time fits into
    /// `slack_s` seconds of remaining deadline budget.
    pub fn best_within(&self, slack_s: f64) -> Option<&DegradeRung> {
        self.rungs.iter().find(|r| r.extra_device_s <= slack_s)
    }

    /// The cheapest rung (ties: most accurate), regardless of slack —
    /// the last resort when no rung fits the deadline but completing
    /// late still beats stranding.
    pub fn cheapest(&self) -> Option<&DegradeRung> {
        self.rungs.iter().min_by(|a, b| {
            a.extra_device_s
                .total_cmp(&b.extra_device_s)
                .then(b.accuracy.total_cmp(&a.accuracy))
        })
    }

    /// Internal-consistency check: finite non-negative costs, accuracy in
    /// `[0, 1]`, sorted best-accuracy-first.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.rungs.iter().enumerate() {
            if !r.extra_device_s.is_finite() || r.extra_device_s < 0.0 {
                return Err(format!("rung {i}: negative extra device time"));
            }
            if !(0.0..=1.0).contains(&r.accuracy) {
                return Err(format!("rung {i}: accuracy {} outside [0,1]", r.accuracy));
            }
        }
        for w in self.rungs.windows(2) {
            if w[1].accuracy > w[0].accuracy {
                return Err("rungs not sorted by descending accuracy".into());
            }
        }
        Ok(())
    }
}

/// Derive the ladder an offloaded `plan` implies. `acc_at_exit[i]` is the
/// conditional accuracy of the plan's device-side exit `i`; `local_finish`
/// is the device-only completion option, if the stream's menu offers one,
/// as `(extra_device_s, accuracy)`.
pub fn ladder_for_plan(
    plan: &SurgeryPlan,
    acc_at_exit: &[f64],
    local_finish: Option<(f64, f64)>,
) -> DegradeLadder {
    debug_assert_eq!(plan.exits.len(), acc_at_exit.len());
    let mut rungs: Vec<DegradeRung> = acc_at_exit
        .iter()
        .enumerate()
        .map(|(i, &acc)| DegradeRung {
            exit: Some(i),
            extra_device_s: 0.0,
            accuracy: (acc - FORCED_EXIT_ACC_COST).max(0.0),
        })
        .collect();
    if let Some((extra_s, accuracy)) = local_finish {
        rungs.push(DegradeRung {
            exit: None,
            extra_device_s: extra_s.max(0.0),
            accuracy,
        });
    }
    DegradeLadder::new(rungs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pruning::PruneLevel;

    fn plan_with_exits(n: usize) -> SurgeryPlan {
        SurgeryPlan {
            cut: 8,
            exits: (0..n).map(|i| (i, 0.8)).collect(),
            prune: PruneLevel::None,
            quantize_tx: false,
        }
    }

    #[test]
    fn ladder_sorts_best_accuracy_first() {
        let l = ladder_for_plan(&plan_with_exits(2), &[0.70, 0.74], Some((0.02, 0.76)));
        assert_eq!(l.rungs.len(), 3);
        assert!(l.validate().is_ok());
        // Local finish (0.76) outranks forced exits (0.73, 0.69).
        assert_eq!(l.rungs[0].exit, None);
        assert_eq!(l.rungs[1].exit, Some(1));
        assert_eq!(l.rungs[2].exit, Some(0));
        assert!((l.rungs[1].accuracy - (0.74 - FORCED_EXIT_ACC_COST)).abs() < 1e-12);
    }

    #[test]
    fn best_within_is_deadline_aware() {
        let l = ladder_for_plan(&plan_with_exits(1), &[0.71], Some((0.05, 0.76)));
        // Plenty of slack: take the accurate local finish.
        assert_eq!(l.best_within(0.1).unwrap().exit, None);
        // Tight slack: fall to the free forced exit.
        assert_eq!(l.best_within(0.01).unwrap().exit, Some(0));
        // Negative slack: nothing fits, cheapest() is the fallback.
        assert!(l.best_within(-0.01).is_none());
        assert_eq!(l.cheapest().unwrap().exit, Some(0));
    }

    #[test]
    fn exitless_plan_still_gets_local_finish() {
        let l = ladder_for_plan(&plan_with_exits(0), &[], Some((0.03, 0.72)));
        assert_eq!(l.rungs.len(), 1);
        assert_eq!(l.rungs[0].exit, None);
        assert!((l.rungs[0].extra_device_s - 0.03).abs() < 1e-12);
    }

    #[test]
    fn empty_ladder_has_no_rungs() {
        let l = ladder_for_plan(&plan_with_exits(0), &[], None);
        assert!(l.is_empty());
        assert!(l.best_within(1.0).is_none());
        assert!(l.cheapest().is_none());
        assert!(DegradeLadder::none().validate().is_ok());
    }

    #[test]
    fn negative_local_extra_clamps_to_zero() {
        // A quantized/pruned plan can price its prefix above the plain
        // device-only time; the local rung never reports negative cost.
        let l = ladder_for_plan(&plan_with_exits(0), &[], Some((-0.01, 0.7)));
        assert_eq!(l.rungs[0].extra_device_s, 0.0);
    }

    #[test]
    fn validate_rejects_malformed_rungs() {
        let bad = DegradeLadder {
            rungs: vec![DegradeRung {
                exit: None,
                extra_device_s: -1.0,
                accuracy: 0.7,
            }],
        };
        assert!(bad.validate().is_err());
        let unsorted = DegradeLadder {
            rungs: vec![
                DegradeRung {
                    exit: Some(0),
                    extra_device_s: 0.0,
                    accuracy: 0.6,
                },
                DegradeRung {
                    exit: None,
                    extra_device_s: 0.0,
                    accuracy: 0.8,
                },
            ],
        };
        assert!(unsorted.validate().is_err());
    }
}
