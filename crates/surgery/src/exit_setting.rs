//! The exit-setting dynamic program.
//!
//! Given candidate exit hosts inside a device prefix, pick at most
//! `max_exits` of them and one confidence threshold so that *expected*
//! end-to-end latency is minimized subject to an accuracy floor.
//!
//! With a common threshold `t`, coverage is monotone in depth, so the
//! expected cost and accuracy of a selection decompose over *consecutive
//! selected pairs* — which admits an exact `O(E·m²)` DP per threshold with
//! Pareto fronts over `(cost, accuracy)` per state (the accuracy constraint
//! makes the problem bi-criteria). This mirrors the low-complexity
//! exit-setting algorithm of the LEIME line of work.

use scalpel_models::{DepthCache, DifficultyModel, NodeId};
use serde::{Deserialize, Serialize};

/// One possible exit host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitCandidate {
    /// Backbone node id of the host.
    pub node: NodeId,
    /// Fraction of backbone FLOPs completed at the host.
    pub depth_fraction: f64,
    /// Device seconds to compute the backbone through the host.
    pub time_to_host_s: f64,
    /// Device seconds to evaluate this host's head.
    pub head_time_s: f64,
}

/// An exit-setting instance for one (stream, cut) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitSettingProblem {
    /// Candidate hosts in ascending depth order.
    pub hosts: Vec<ExitCandidate>,
    /// Device seconds for the full prefix when no exit fires.
    pub full_prefix_time_s: f64,
    /// Seconds paid *after* the prefix by non-exiting inputs (transmission
    /// + edge compute + queueing estimate).
    pub rest_time_s: f64,
    /// Maximum number of exits surgery may attach.
    pub max_exits: usize,
    /// Minimum acceptable expected accuracy.
    pub accuracy_floor: f64,
    /// Accuracy of the full path (after pruning, if any).
    pub acc_full: f64,
    /// Difficulty calibration.
    pub difficulty: DifficultyModel,
    /// Thresholds to sweep.
    pub threshold_grid: Vec<f64>,
}

impl ExitSettingProblem {
    /// The default threshold sweep.
    pub fn default_grid() -> Vec<f64> {
        vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
    }
}

/// The chosen exits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitSettingSolution {
    /// Indices into `problem.hosts`, ascending. Empty = no exits.
    pub selected: Vec<usize>,
    /// The common threshold.
    pub threshold: f64,
    /// Expected end-to-end seconds under the plan.
    pub expected_latency_s: f64,
    /// Expected accuracy under the plan.
    pub expected_accuracy: f64,
}

#[derive(Debug, Clone)]
struct Entry {
    cost: f64,
    acc: f64,
    parent: Option<(usize, usize)>, // (host j, entry index in dp[j][k-1])
}

/// Keep only Pareto-optimal `(cost ↓, acc ↑)` entries.
fn pareto_prune(mut entries: Vec<Entry>) -> Vec<Entry> {
    entries.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    let mut out: Vec<Entry> = Vec::with_capacity(entries.len());
    let mut best_acc = f64::NEG_INFINITY;
    for e in entries {
        if e.acc > best_acc + 1e-15 {
            best_acc = e.acc;
            out.push(e);
        }
    }
    out
}

/// Solve by DP over thresholds; always returns a solution (the empty
/// selection when no exit helps or none is feasible *and* the empty
/// selection itself clears the floor; if even `acc_full` is below the
/// floor, returns the empty selection anyway — callers treat that plan as
/// infeasible downstream).
pub fn solve(p: &ExitSettingProblem) -> ExitSettingSolution {
    let no_exit = ExitSettingSolution {
        selected: Vec::new(),
        threshold: 1.0,
        expected_latency_s: p.full_prefix_time_s + p.rest_time_s,
        expected_accuracy: p.acc_full,
    };
    if p.hosts.is_empty() || p.max_exits == 0 {
        return no_exit;
    }
    let mut best = no_exit;
    // The depth transcendentals (`x^γ`, `(1−x)^η`) are threshold-invariant:
    // hoist them out of the grid sweep so each host pays for them once,
    // not once per threshold.
    let depth_caches: Vec<DepthCache> = p
        .hosts
        .iter()
        .map(|h| p.difficulty.depth_cache(h.depth_fraction))
        .collect();
    for &t in &p.threshold_grid {
        if let Some(sol) = solve_fixed_threshold(p, &depth_caches, t) {
            let best_feasible = best.expected_accuracy + 1e-12 >= p.accuracy_floor;
            if sol.expected_accuracy + 1e-12 >= p.accuracy_floor
                && (!best_feasible || sol.expected_latency_s < best.expected_latency_s)
            {
                best = sol;
            }
        }
    }
    best
}

/// DP for one threshold; returns the feasible min-latency selection if any
/// non-empty selection is feasible.
fn solve_fixed_threshold(
    p: &ExitSettingProblem,
    depth_caches: &[DepthCache],
    t: f64,
) -> Option<ExitSettingSolution> {
    let m = p.hosts.len();
    let e_max = p.max_exits.min(m);
    // `t^ρ` is depth-invariant: one evaluation covers every host.
    let thr_pow = p.difficulty.threshold_pow(t);
    let cov: Vec<f64> = depth_caches
        .iter()
        .map(|&d| p.difficulty.coverage_cached(d, thr_pow))
        .collect();
    let acc: Vec<f64> = depth_caches
        .iter()
        .map(|&d| p.difficulty.conditional_accuracy_cached(d, t))
        .collect();
    // dp[i][k]: Pareto entries for selections of k exits ending at host i.
    let mut dp: Vec<Vec<Vec<Entry>>> = vec![vec![Vec::new(); e_max + 1]; m];
    for i in 0..m {
        dp[i][1] = vec![Entry {
            cost: cov[i] * (p.hosts[i].time_to_host_s + p.hosts[i].head_time_s)
                + (1.0 - cov[i]) * p.hosts[i].head_time_s,
            acc: cov[i] * acc[i],
            parent: None,
        }];
        // equivalently: cov*t_i + head*1.0 — every input reaching exit i
        // (here: all of them, it's the first exit) evaluates the head.
        for k in 2..=e_max {
            let mut entries = Vec::new();
            for j in 0..i {
                for (idx, e) in dp[j][k - 1].iter().enumerate() {
                    let mass = (cov[i] - cov[j]).max(0.0);
                    let survivors = 1.0 - cov[j];
                    entries.push(Entry {
                        cost: e.cost
                            + mass * p.hosts[i].time_to_host_s
                            + survivors * p.hosts[i].head_time_s,
                        acc: e.acc + mass * acc[i],
                        parent: Some((j, idx)),
                    });
                }
            }
            dp[i][k] = pareto_prune(entries);
        }
        dp[i][1] = pareto_prune(std::mem::take(&mut dp[i][1]));
    }
    // Close each state with the non-exiting tail and pick the feasible best.
    let mut best: Option<(f64, f64, usize, usize, usize)> = None; // (cost, acc, i, k, idx)
    for i in 0..m {
        for (k, states) in dp[i].iter().enumerate().skip(1) {
            for (idx, e) in states.iter().enumerate() {
                let remain = 1.0 - cov[i];
                let cost = e.cost + remain * (p.full_prefix_time_s + p.rest_time_s);
                let a = e.acc + remain * p.acc_full;
                if a + 1e-12 < p.accuracy_floor {
                    continue;
                }
                if best.is_none_or(|(c, _, _, _, _)| cost < c) {
                    best = Some((cost, a, i, k, idx));
                }
            }
        }
    }
    let (cost, a, mut i, mut k, mut idx) = best?;
    // Reconstruct the selection.
    let mut selected = vec![i];
    while let Some((j, pidx)) = dp[i][k].get(idx).and_then(|e| e.parent) {
        selected.push(j);
        i = j;
        k -= 1;
        idx = pidx;
    }
    selected.reverse();
    Some(ExitSettingSolution {
        selected,
        threshold: t,
        expected_latency_s: cost,
        expected_accuracy: a,
    })
}

/// Exhaustive reference solver (small instances only; used by tests to
/// certify the DP).
pub fn solve_exhaustive(p: &ExitSettingProblem) -> ExitSettingSolution {
    let m = p.hosts.len();
    assert!(m <= 16, "exhaustive solver is for small instances");
    let mut best = ExitSettingSolution {
        selected: Vec::new(),
        threshold: 1.0,
        expected_latency_s: p.full_prefix_time_s + p.rest_time_s,
        expected_accuracy: p.acc_full,
    };
    for &t in &p.threshold_grid {
        for mask in 1u32..(1 << m) {
            if mask.count_ones() as usize > p.max_exits {
                continue;
            }
            let sel: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
            let (cost, acc) = evaluate_selection(p, &sel, t);
            if acc + 1e-12 >= p.accuracy_floor && cost < best.expected_latency_s {
                best = ExitSettingSolution {
                    selected: sel,
                    threshold: t,
                    expected_latency_s: cost,
                    expected_accuracy: acc,
                };
            }
        }
    }
    best
}

/// Expected (latency, accuracy) of a selection with *per-exit* thresholds
/// (`thresholds[i]` belongs to `sel[i]`). Coverage uses the running
/// maximum, so non-monotone threshold patterns are handled consistently.
pub fn evaluate_selection_multi(
    p: &ExitSettingProblem,
    sel: &[usize],
    thresholds: &[f64],
) -> (f64, f64) {
    assert_eq!(sel.len(), thresholds.len());
    let caches: Vec<DepthCache> = sel
        .iter()
        .map(|&i| p.difficulty.depth_cache(p.hosts[i].depth_fraction))
        .collect();
    let thr_pows: Vec<f64> = thresholds
        .iter()
        .map(|&t| p.difficulty.threshold_pow(t))
        .collect();
    evaluate_selection_cached(p, sel, &caches, thresholds, &thr_pows)
}

/// Core of [`evaluate_selection_multi`] over prebuilt per-exit depth
/// caches and threshold powers (`caches[i]`/`thr_pows[i]` belong to
/// `sel[i]`/`thresholds[i]`) — what the coordinate-ascent refinement
/// calls in its inner loop with every transcendental already paid for.
fn evaluate_selection_cached(
    p: &ExitSettingProblem,
    sel: &[usize],
    caches: &[DepthCache],
    thresholds: &[f64],
    thr_pows: &[f64],
) -> (f64, f64) {
    let mut cost = 0.0;
    let mut acc = 0.0;
    let mut cov_prev = 0.0;
    for (j, &i) in sel.iter().enumerate() {
        let h = &p.hosts[i];
        let c = p
            .difficulty
            .coverage_cached(caches[j], thr_pows[j])
            .max(cov_prev);
        let mass = c - cov_prev;
        let survivors_before = 1.0 - cov_prev;
        cost += mass * h.time_to_host_s + survivors_before * h.head_time_s;
        acc += mass
            * p.difficulty
                .conditional_accuracy_cached(caches[j], thresholds[j]);
        cov_prev = c;
    }
    let remain = 1.0 - cov_prev;
    cost += remain * (p.full_prefix_time_s + p.rest_time_s);
    acc += remain * p.acc_full;
    (cost, acc)
}

/// Refine a uniform-threshold solution by coordinate ascent on individual
/// exit thresholds (each exit tries every grid value while the others stay
/// fixed; accept only feasible strict improvements). Returns per-exit
/// thresholds and the refined (latency, accuracy). The result is never
/// worse than the input solution.
pub fn refine_thresholds(
    p: &ExitSettingProblem,
    sol: &ExitSettingSolution,
) -> (Vec<f64>, f64, f64) {
    let mut thresholds = vec![sol.threshold; sol.selected.len()];
    if sol.selected.is_empty() {
        return (thresholds, sol.expected_latency_s, sol.expected_accuracy);
    }
    // Hoisted transcendentals: per-exit depth caches and one `t^ρ` per
    // distinct grid value, computed before the ascent instead of inside
    // every candidate evaluation.
    let caches: Vec<DepthCache> = sol
        .selected
        .iter()
        .map(|&i| p.difficulty.depth_cache(p.hosts[i].depth_fraction))
        .collect();
    let grid_pows: Vec<f64> = p
        .threshold_grid
        .iter()
        .map(|&t| p.difficulty.threshold_pow(t))
        .collect();
    let mut thr_pows = vec![p.difficulty.threshold_pow(sol.threshold); thresholds.len()];
    let (mut best_cost, mut best_acc) =
        evaluate_selection_cached(p, &sol.selected, &caches, &thresholds, &thr_pows);
    let max_rounds = 8;
    for _ in 0..max_rounds {
        let mut improved = false;
        for i in 0..thresholds.len() {
            let mut current = thresholds[i];
            let mut current_pow = thr_pows[i];
            for (g, &t) in p.threshold_grid.iter().enumerate() {
                if t == current {
                    continue;
                }
                thresholds[i] = t;
                thr_pows[i] = grid_pows[g];
                let (cost, acc) =
                    evaluate_selection_cached(p, &sol.selected, &caches, &thresholds, &thr_pows);
                if acc + 1e-12 >= p.accuracy_floor && cost < best_cost - 1e-12 {
                    best_cost = cost;
                    best_acc = acc;
                    current = t;
                    current_pow = thr_pows[i];
                    improved = true;
                } else {
                    thresholds[i] = current;
                    thr_pows[i] = current_pow;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (thresholds, best_cost, best_acc)
}

/// Expected (latency, accuracy) of an explicit selection at threshold `t`.
pub fn evaluate_selection(p: &ExitSettingProblem, sel: &[usize], t: f64) -> (f64, f64) {
    // One `t^ρ` for the whole selection (depth-invariant).
    let thr_pow = p.difficulty.threshold_pow(t);
    let mut cost = 0.0;
    let mut acc = 0.0;
    let mut cov_prev = 0.0;
    for &i in sel {
        let h = &p.hosts[i];
        let d = p.difficulty.depth_cache(h.depth_fraction);
        let c = p.difficulty.coverage_cached(d, thr_pow).max(cov_prev);
        let mass = c - cov_prev;
        let survivors_before = 1.0 - cov_prev;
        cost += mass * h.time_to_host_s + survivors_before * h.head_time_s;
        acc += mass * p.difficulty.conditional_accuracy_cached(d, t);
        cov_prev = c;
    }
    let remain = 1.0 - cov_prev;
    cost += remain * (p.full_prefix_time_s + p.rest_time_s);
    acc += remain * p.acc_full;
    (cost, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(rest: f64, floor: f64) -> ExitSettingProblem {
        // Five hosts spread over a 100 ms prefix; heads cost 1 ms.
        let hosts = (1..=5)
            .map(|i| ExitCandidate {
                node: i * 2,
                depth_fraction: i as f64 * 0.15,
                time_to_host_s: i as f64 * 0.020,
                head_time_s: 0.001,
            })
            .collect();
        ExitSettingProblem {
            hosts,
            full_prefix_time_s: 0.100,
            rest_time_s: rest,
            max_exits: 3,
            accuracy_floor: floor,
            acc_full: 0.76,
            difficulty: DifficultyModel::default(),
            threshold_grid: ExitSettingProblem::default_grid(),
        }
    }

    #[test]
    fn exits_help_when_rest_is_expensive() {
        let p = problem(0.5, 0.70);
        let s = solve(&p);
        assert!(!s.selected.is_empty());
        assert!(s.expected_latency_s < p.full_prefix_time_s + p.rest_time_s);
        assert!(s.expected_accuracy >= 0.70);
    }

    #[test]
    fn no_exits_when_heads_cannot_pay_off() {
        // Nothing after the prefix (device-only, rest = 0) and heads cost
        // time: the best selection may still exit early to skip prefix
        // remainder... make prefix cheap too so exits can't win.
        let mut p = problem(0.0, 0.0);
        for h in &mut p.hosts {
            h.time_to_host_s = 0.0999; // exits barely before the end
            h.head_time_s = 0.01; // expensive heads
        }
        let s = solve(&p);
        assert!(s.selected.is_empty(), "selected {:?}", s.selected);
    }

    #[test]
    fn dp_matches_exhaustive() {
        for rest in [0.0, 0.05, 0.2, 1.0] {
            for floor in [0.0, 0.72, 0.75] {
                let p = problem(rest, floor);
                let dp = solve(&p);
                let ex = solve_exhaustive(&p);
                assert!(
                    (dp.expected_latency_s - ex.expected_latency_s).abs() < 1e-9,
                    "rest={rest} floor={floor}: dp {} vs exhaustive {} (dp sel {:?}, ex sel {:?})",
                    dp.expected_latency_s,
                    ex.expected_latency_s,
                    dp.selected,
                    ex.selected
                );
            }
        }
    }

    #[test]
    fn accuracy_floor_binds() {
        let loose = solve(&problem(0.5, 0.0));
        let tight = solve(&problem(0.5, 0.759));
        assert!(tight.expected_accuracy >= 0.759 - 1e-9);
        assert!(tight.expected_latency_s >= loose.expected_latency_s - 1e-12);
    }

    #[test]
    fn impossible_floor_returns_empty_selection() {
        let p = problem(0.5, 0.99);
        let s = solve(&p);
        assert!(s.selected.is_empty());
        assert_eq!(s.expected_accuracy, 0.76);
    }

    #[test]
    fn max_exits_zero_means_no_exits() {
        let mut p = problem(0.5, 0.0);
        p.max_exits = 0;
        assert!(solve(&p).selected.is_empty());
    }

    #[test]
    fn selection_is_sorted_and_within_bounds() {
        let p = problem(0.3, 0.72);
        let s = solve(&p);
        assert!(s.selected.windows(2).all(|w| w[0] < w[1]));
        assert!(s.selected.len() <= p.max_exits);
        assert!(s.selected.iter().all(|&i| i < p.hosts.len()));
    }

    #[test]
    fn evaluate_selection_consistent_with_solution() {
        let p = problem(0.4, 0.70);
        let s = solve(&p);
        if !s.selected.is_empty() {
            let (cost, acc) = evaluate_selection(&p, &s.selected, s.threshold);
            assert!((cost - s.expected_latency_s).abs() < 1e-9);
            assert!((acc - s.expected_accuracy).abs() < 1e-9);
        }
    }

    #[test]
    fn refinement_never_hurts_and_respects_floor() {
        for rest in [0.05, 0.2, 0.8] {
            for floor in [0.0, 0.73, 0.755] {
                let p = problem(rest, floor);
                let sol = solve(&p);
                let (thresholds, cost, acc) = refine_thresholds(&p, &sol);
                assert_eq!(thresholds.len(), sol.selected.len());
                assert!(
                    cost <= sol.expected_latency_s + 1e-12,
                    "rest={rest} floor={floor}: refined {cost} worse than {}",
                    sol.expected_latency_s
                );
                if !sol.selected.is_empty() && floor > 0.0 {
                    assert!(acc + 1e-9 >= floor, "floor violated: {acc} < {floor}");
                }
            }
        }
    }

    #[test]
    fn refinement_can_strictly_improve_mixed_instances() {
        // Heads of very different costs at very different depths benefit
        // from per-exit thresholds: the cheap early exit can afford a loose
        // threshold while the deep one stays tight.
        let mut p = problem(0.6, 0.73);
        p.hosts[0].head_time_s = 0.0001;
        p.hosts[4].head_time_s = 0.004;
        let sol = solve(&p);
        let (thresholds, cost, _) = refine_thresholds(&p, &sol);
        if sol.selected.len() >= 2 {
            // Either a strict improvement or already optimal with uniform
            // thresholds; both acceptable, but the refined cost must never
            // exceed the DP cost.
            assert!(cost <= sol.expected_latency_s + 1e-12);
            let distinct = thresholds.windows(2).any(|w| w[0] != w[1]);
            if cost < sol.expected_latency_s - 1e-9 {
                assert!(distinct, "improvement without distinct thresholds");
            }
        }
    }

    #[test]
    fn multi_threshold_evaluation_matches_uniform_case() {
        let p = problem(0.4, 0.0);
        let sol = solve(&p);
        if !sol.selected.is_empty() {
            let uniform = vec![sol.threshold; sol.selected.len()];
            let (c1, a1) = evaluate_selection(&p, &sol.selected, sol.threshold);
            let (c2, a2) = evaluate_selection_multi(&p, &sol.selected, &uniform);
            assert!((c1 - c2).abs() < 1e-12);
            assert!((a1 - a2).abs() < 1e-12);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn random_problem() -> impl Strategy<Value = ExitSettingProblem> {
            (
                prop::collection::vec((0.01f64..0.95, 0.0001f64..0.05, 0.0001f64..0.005), 1..8),
                0.0f64..1.0,  // rest time
                0.0f64..0.77, // accuracy floor
                1usize..4,    // max exits
            )
                .prop_map(|(mut hosts_raw, rest, floor, max_exits)| {
                    hosts_raw.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                    let hosts: Vec<ExitCandidate> = hosts_raw
                        .iter()
                        .enumerate()
                        .map(|(i, &(x, _, head))| ExitCandidate {
                            node: i * 3,
                            depth_fraction: x,
                            // times must be nondecreasing in depth
                            time_to_host_s: x * 0.2
                                + hosts_raw[..=i].iter().map(|h| h.1).sum::<f64>() * 0.1,
                            head_time_s: head,
                        })
                        .collect();
                    let full = hosts.last().map(|h| h.time_to_host_s).unwrap_or(0.0) + 0.05;
                    ExitSettingProblem {
                        hosts,
                        full_prefix_time_s: full,
                        rest_time_s: rest,
                        max_exits,
                        accuracy_floor: floor,
                        acc_full: 0.76,
                        difficulty: DifficultyModel::default(),
                        threshold_grid: vec![0.5, 0.7, 0.9],
                    }
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The DP is certified against brute force on random instances.
            #[test]
            fn dp_equals_exhaustive_on_random_instances(p in random_problem()) {
                let dp = solve(&p);
                let ex = solve_exhaustive(&p);
                prop_assert!(
                    (dp.expected_latency_s - ex.expected_latency_s).abs() < 1e-9,
                    "dp {} vs exhaustive {} (sel {:?} vs {:?})",
                    dp.expected_latency_s, ex.expected_latency_s,
                    dp.selected, ex.selected
                );
            }

            /// Solutions are always internally consistent and feasible
            /// whenever a feasible point exists.
            #[test]
            fn solutions_are_consistent(p in random_problem()) {
                let sol = solve(&p);
                prop_assert!(sol.selected.len() <= p.max_exits);
                prop_assert!(sol.selected.windows(2).all(|w| w[0] < w[1]));
                if !sol.selected.is_empty() {
                    let (cost, acc) = evaluate_selection(&p, &sol.selected, sol.threshold);
                    prop_assert!((cost - sol.expected_latency_s).abs() < 1e-9);
                    prop_assert!((acc - sol.expected_accuracy).abs() < 1e-9);
                }
                // Refinement never worsens and keeps feasibility.
                let (_, cost, acc) = refine_thresholds(&p, &sol);
                prop_assert!(cost <= sol.expected_latency_s + 1e-9);
                if sol.expected_accuracy + 1e-12 >= p.accuracy_floor {
                    prop_assert!(acc + 1e-9 >= p.accuracy_floor);
                }
            }
        }
    }

    #[test]
    fn more_allowed_exits_never_hurts() {
        let mut p1 = problem(0.5, 0.70);
        p1.max_exits = 1;
        let mut p3 = problem(0.5, 0.70);
        p3.max_exits = 3;
        let s1 = solve(&p1);
        let s3 = solve(&p3);
        assert!(s3.expected_latency_s <= s1.expected_latency_s + 1e-12);
    }
}
