//! # scalpel-surgery — model surgery
//!
//! Restructures a backbone DNN for one stream of a heterogeneous edge
//! system:
//!
//! * [`plan`] — the [`SurgeryPlan`] type: a cut boundary, a set of early
//!   exits with thresholds, and a structured-pruning level;
//! * [`pruning`] — the pruning levels and their compute/accuracy trades;
//! * [`partition`] — cut-point candidate selection (downsampling dense cut
//!   lists to a manageable, well-spread set);
//! * [`exit_setting`] — the exit-setting dynamic program (LEIME-style):
//!   pick ≤E exit hosts and a threshold minimizing expected latency subject
//!   to an accuracy floor;
//! * [`pareto`] — dominated-plan elimination;
//! * [`degrade`] — runtime graceful-degradation ladders (forced exits,
//!   local finish) implied by an offloaded plan;
//! * [`candidates`] — the full candidate-generation pipeline producing the
//!   per-stream plan menus the joint optimizer searches over.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod candidates;
pub mod degrade;
pub mod exit_setting;
pub mod pareto;
pub mod partition;
pub mod plan;
pub mod pruning;

pub use candidates::{CandidatePlan, PlanProfile, ReferenceEnv};
pub use degrade::{ladder_for_plan, DegradeLadder, DegradeRung, FORCED_EXIT_ACC_COST};
pub use exit_setting::{ExitCandidate, ExitSettingProblem, ExitSettingSolution};
pub use pareto::pareto_filter;
pub use plan::SurgeryPlan;
pub use pruning::PruneLevel;
