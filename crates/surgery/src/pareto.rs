//! Dominated-plan elimination.
//!
//! A candidate plan is characterized by a demand vector (expected device
//! seconds, expected bytes on the wire, expected edge FLOPs, negated
//! accuracy). If plan A is ≤ plan B on every coordinate and < on one, no
//! resource allocation can make B the better choice (latency is
//! nondecreasing in each demand under any fixed allocation), so B is
//! dropped before the joint search.

/// Keep the Pareto-minimal items under the metric vectors produced by
/// `key` (all coordinates minimized). Stable: survivors keep their input
/// order. Ties (exactly equal vectors) keep the first occurrence.
pub fn pareto_filter<T>(items: Vec<T>, key: impl Fn(&T) -> Vec<f64>) -> Vec<T> {
    let metrics: Vec<Vec<f64>> = items.iter().map(&key).collect();
    let n = items.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !keep[i] {
                continue;
            }
            if dominates(&metrics[j], &metrics[i]) || (j < i && metrics[j] == metrics[i]) {
                keep[i] = false;
            }
        }
    }
    items
        .into_iter()
        .zip(keep)
        .filter_map(|(item, k)| k.then_some(item))
        .collect()
}

/// Whether `a` dominates `b`: `a ≤ b` everywhere and `a < b` somewhere.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominated_points_are_removed() {
        let pts = vec![(1.0, 5.0), (2.0, 2.0), (3.0, 3.0), (5.0, 1.0)];
        let out = pareto_filter(pts, |&(a, b)| vec![a, b]);
        assert_eq!(out, vec![(1.0, 5.0), (2.0, 2.0), (5.0, 1.0)]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let pts = vec![(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)];
        let out = pareto_filter(pts.clone(), |&(a, b)| vec![a, b]);
        assert_eq!(out, pts);
    }

    #[test]
    fn exact_duplicates_keep_first() {
        let pts = vec![("a", 1.0), ("b", 1.0), ("c", 2.0)];
        let out = pareto_filter(pts, |&(_, v)| vec![v]);
        assert_eq!(out, vec![("a", 1.0)]);
    }

    #[test]
    fn single_metric_keeps_only_min() {
        let pts = vec![4.0, 2.0, 7.0, 2.5];
        let out = pareto_filter(pts, |&v| vec![v]);
        assert_eq!(out, vec![2.0]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<f64> = pareto_filter(vec![], |&v: &f64| vec![v]);
        assert!(out.is_empty());
    }

    #[test]
    fn dominates_is_strict() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]));
    }

    #[test]
    fn three_dimensional_frontier() {
        let pts = vec![
            vec![1.0, 1.0, 9.0],
            vec![1.0, 1.0, 8.0], // dominates the first
            vec![9.0, 0.5, 9.0],
            vec![0.5, 9.0, 9.0],
        ];
        let out = pareto_filter(pts, |v| v.clone());
        assert_eq!(out.len(), 3);
        assert!(!out.contains(&vec![1.0, 1.0, 9.0]));
    }
}
