//! Cut-point candidate selection.
//!
//! Deep chains (VGG-16 has 38 boundaries) would blow up the joint search if
//! every boundary were a candidate; this module thins the list while
//! keeping it *well spread in compute depth* — the property that matters
//! for partitioning — and always keeping the two extremes (full offload,
//! device-only).

use scalpel_models::{CutPoint, ModelGraph};

/// Select up to `max_cuts` single-tensor boundaries, always including
/// boundary 0 and boundary n, spread as evenly as possible over the
/// model's *FLOPs depth* (not layer index — late FC layers are cheap and
/// would otherwise crowd the menu).
pub fn candidate_cuts(model: &ModelGraph, max_cuts: usize) -> Vec<CutPoint> {
    let all = model.cut_points();
    // The two extreme cuts (full offload, device-only) are mandatory, so a
    // smaller request is clamped up rather than rejected.
    let max_cuts = max_cuts.max(2);
    if all.len() <= max_cuts {
        return all;
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(max_cuts); // indices into `all`
    chosen.push(0);
    // Greedy farthest-point selection on depth fraction.
    let depth: Vec<f64> = all
        .iter()
        .map(|c| model.depth_fraction(c.boundary))
        .collect();
    chosen.push(all.len() - 1);
    while chosen.len() < max_cuts {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..all.len() {
            if chosen.contains(&i) {
                continue;
            }
            let dist = chosen
                .iter()
                .map(|&j| (depth[i] - depth[j]).abs())
                .fold(f64::INFINITY, f64::min);
            if best.is_none_or(|(_, d)| dist > d) {
                best = Some((i, dist));
            }
        }
        match best {
            Some((i, _)) => chosen.push(i),
            None => break,
        }
    }
    chosen.sort_unstable();
    chosen.into_iter().map(|i| all[i].clone()).collect()
}

/// The cut whose crossing tensor is smallest among interior cuts — a
/// common transmission-friendly heuristic starting point.
pub fn min_bytes_interior_cut(model: &ModelGraph) -> Option<CutPoint> {
    model
        .cut_points()
        .into_iter()
        .filter(|c| c.boundary != 0 && c.boundary != model.len())
        .min_by_key(|c| c.bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalpel_models::zoo;

    #[test]
    fn extremes_always_kept() {
        for name in zoo::ALL_NAMES {
            let g = zoo::by_name(name).unwrap();
            let cuts = candidate_cuts(&g, 6);
            assert!(cuts.iter().any(|c| c.boundary == 0), "{name}");
            assert!(cuts.iter().any(|c| c.boundary == g.len()), "{name}");
            assert!(cuts.len() <= 6, "{name}: {}", cuts.len());
        }
    }

    #[test]
    fn small_lists_pass_through() {
        let g = zoo::lenet5(10);
        let all = g.cut_points();
        let cuts = candidate_cuts(&g, 100);
        assert_eq!(cuts.len(), all.len());
    }

    #[test]
    fn selection_is_spread_in_depth() {
        let g = zoo::vgg16(1000);
        let cuts = candidate_cuts(&g, 8);
        let depths: Vec<f64> = cuts.iter().map(|c| g.depth_fraction(c.boundary)).collect();
        // Maximum gap between consecutive chosen depths should be well
        // below 1 (i.e. we didn't cluster everything at one end).
        let max_gap = depths.windows(2).map(|w| w[1] - w[0]).fold(0.0, f64::max);
        assert!(max_gap < 0.5, "max depth gap {max_gap}: {depths:?}");
    }

    #[test]
    fn results_sorted_by_boundary() {
        let g = zoo::resnet18(1000);
        let cuts = candidate_cuts(&g, 7);
        assert!(cuts.windows(2).all(|w| w[0].boundary < w[1].boundary));
    }

    #[test]
    fn min_bytes_cut_is_interior_and_minimal() {
        let g = zoo::alexnet(1000);
        let c = min_bytes_interior_cut(&g).unwrap();
        assert!(c.boundary != 0 && c.boundary != g.len());
        for other in g.cut_points() {
            if other.boundary != 0 && other.boundary != g.len() {
                assert!(c.bytes <= other.bytes);
            }
        }
    }

    #[test]
    fn lenet_min_cut_exists() {
        assert!(min_bytes_interior_cut(&zoo::lenet5(10)).is_some());
    }
}
