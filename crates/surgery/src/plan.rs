//! The surgery plan: one stream's restructuring of its backbone.

use crate::pruning::PruneLevel;
use scalpel_models::{ExitErrorKind, ModelError, ModelGraph, MultiExitModel, NodeId};
use serde::{Deserialize, Serialize};

/// A complete model-surgery decision for one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurgeryPlan {
    /// Cut boundary: nodes `0..cut` run on the device, `cut..n` on the edge.
    pub cut: usize,
    /// Early exits as `(host node, confidence threshold)`; hosts must lie
    /// strictly inside the device prefix so they can fire before
    /// transmission.
    pub exits: Vec<(NodeId, f64)>,
    /// Structured pruning applied to the device prefix.
    pub prune: PruneLevel,
    /// Quantize the cut tensor to int8 before transmission (4× fewer
    /// bytes for f32 activations, ~0.5 pp accuracy cost on the full path).
    pub quantize_tx: bool,
}

/// Accuracy cost of int8-quantizing the cut tensor (calibrated to
/// post-training activation-quantization results).
pub const QUANTIZE_TX_ACC_COST: f64 = 0.005;

/// Byte shrink factor of int8 transmission relative to f32 activations.
pub const QUANTIZE_TX_SHRINK: f64 = 4.0;

impl SurgeryPlan {
    /// The no-surgery plan: full offload, no exits, no pruning.
    pub fn full_offload() -> Self {
        Self {
            cut: 0,
            exits: Vec::new(),
            prune: PruneLevel::None,
            quantize_tx: false,
        }
    }

    /// Run everything on the device, no exits, no pruning.
    pub fn device_only(model: &ModelGraph) -> Self {
        Self {
            cut: model.len(),
            exits: Vec::new(),
            prune: PruneLevel::None,
            quantize_tx: false,
        }
    }

    /// A plain partition at `cut` (Neurosurgeon-style), no exits.
    pub fn partition(cut: usize) -> Self {
        Self {
            cut,
            exits: Vec::new(),
            prune: PruneLevel::None,
            quantize_tx: false,
        }
    }

    /// Check the plan against its model: the cut must be a valid
    /// single-tensor boundary and every exit host must precede the cut.
    pub fn validate(&self, model: &ModelGraph) -> Result<(), ModelError> {
        model.validate_cut(self.cut)?;
        for &(host, threshold) in &self.exits {
            if host >= self.cut {
                return Err(ModelError::InvalidExit {
                    node: host,
                    kind: ExitErrorKind::HostAfterCut { cut: self.cut },
                });
            }
            if !(0.0..1.0).contains(&threshold) {
                return Err(ModelError::InvalidExit {
                    node: host,
                    kind: ExitErrorKind::ThresholdOutOfRange { threshold },
                });
            }
        }
        Ok(())
    }

    /// Instantiate the multi-exit model this plan describes.
    pub fn instantiate(&self, model: &ModelGraph) -> Result<MultiExitModel, ModelError> {
        self.validate(model)?;
        let classes = model.output_shape().c;
        MultiExitModel::new(model.clone(), &self.exits, classes)
    }

    /// Whether any computation stays on the device.
    pub fn has_device_part(&self) -> bool {
        self.cut > 0
    }

    /// Whether any computation is offloaded.
    pub fn has_edge_part(&self, model: &ModelGraph) -> bool {
        self.cut < model.len()
    }

    /// Bytes crossing the cut (0 for device-only).
    pub fn tx_bytes(&self, model: &ModelGraph) -> usize {
        model.crossing_bytes(self.cut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalpel_models::zoo;

    #[test]
    fn full_offload_and_device_only_validate_on_all_models() {
        for name in zoo::ALL_NAMES {
            let g = zoo::by_name(name).unwrap();
            assert!(SurgeryPlan::full_offload().validate(&g).is_ok(), "{name}");
            assert!(SurgeryPlan::device_only(&g).validate(&g).is_ok(), "{name}");
        }
    }

    #[test]
    fn exit_after_cut_is_rejected() {
        let g = zoo::lenet5(10);
        let plan = SurgeryPlan {
            cut: 3,
            exits: vec![(5, 0.8)],
            prune: PruneLevel::None,
            quantize_tx: false,
        };
        assert!(plan.validate(&g).is_err());
        let ok = SurgeryPlan {
            cut: 6,
            exits: vec![(2, 0.8)],
            prune: PruneLevel::None,
            quantize_tx: false,
        };
        assert!(ok.validate(&g).is_ok());
    }

    #[test]
    fn invalid_cut_is_rejected() {
        let g = zoo::resnet18(1000);
        // boundary 6 lands inside the first basic block (two live tensors).
        let bad = SurgeryPlan::partition(6);
        assert!(bad.validate(&g).is_err());
    }

    #[test]
    fn instantiate_builds_multi_exit_model() {
        let g = zoo::alexnet(1000);
        let plan = SurgeryPlan {
            cut: 16,
            exits: vec![(3, 0.8), (7, 0.85)],
            prune: PruneLevel::Light,
            quantize_tx: false,
        };
        let me = plan.instantiate(&g).unwrap();
        assert_eq!(me.num_exits(), 2);
        assert_eq!(me.device_side_exits(plan.cut).len(), 2);
    }

    #[test]
    fn tx_bytes_zero_when_device_only() {
        let g = zoo::lenet5(10);
        assert_eq!(SurgeryPlan::device_only(&g).tx_bytes(&g), 0);
        assert!(SurgeryPlan::full_offload().tx_bytes(&g) > 0);
    }

    #[test]
    fn threshold_out_of_range_is_rejected() {
        let g = zoo::lenet5(10);
        let plan = SurgeryPlan {
            cut: 6,
            exits: vec![(2, 1.0)],
            prune: PruneLevel::None,
            quantize_tx: false,
        };
        assert!(plan.validate(&g).is_err());
    }
}
