//! Structured pruning of the device-side prefix.
//!
//! Channel pruning shrinks the device prefix's compute by a known factor at
//! a calibrated accuracy cost (ranges follow the structured-pruning
//! literature: ~2× FLOPs reduction for ≲1 % top-1, ~3× for ~2–3 %). The cut
//! tensor itself is *not* shrunk (the edge-side suffix is unpruned and
//! expects full-width features; the last pruned block restores width),
//! so pruning trades device compute against accuracy only.

use serde::{Deserialize, Serialize};

/// How aggressively the device-side prefix is pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PruneLevel {
    /// No pruning.
    #[default]
    None,
    /// ~25 % FLOPs reduction, ~0.2 % accuracy cost.
    Light,
    /// ~50 % FLOPs reduction, ~0.8 % accuracy cost.
    Medium,
    /// ~65 % FLOPs reduction, ~2.5 % accuracy cost.
    Aggressive,
}

impl PruneLevel {
    /// All levels, mildest first.
    pub const ALL: &'static [PruneLevel] = &[
        PruneLevel::None,
        PruneLevel::Light,
        PruneLevel::Medium,
        PruneLevel::Aggressive,
    ];

    /// Multiplier on device-prefix FLOPs.
    pub fn flops_scale(self) -> f64 {
        match self {
            PruneLevel::None => 1.0,
            PruneLevel::Light => 0.75,
            PruneLevel::Medium => 0.50,
            PruneLevel::Aggressive => 0.35,
        }
    }

    /// Absolute top-1 accuracy cost of this level.
    pub fn accuracy_cost(self) -> f64 {
        match self {
            PruneLevel::None => 0.0,
            PruneLevel::Light => 0.002,
            PruneLevel::Medium => 0.008,
            PruneLevel::Aggressive => 0.025,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_monotone() {
        let mut prev_scale = f64::INFINITY;
        let mut prev_cost = -1.0;
        for &l in PruneLevel::ALL {
            assert!(l.flops_scale() < prev_scale || l == PruneLevel::None);
            assert!(l.accuracy_cost() > prev_cost || l == PruneLevel::None);
            prev_scale = l.flops_scale();
            prev_cost = l.accuracy_cost();
        }
    }

    #[test]
    fn none_is_identity() {
        assert_eq!(PruneLevel::None.flops_scale(), 1.0);
        assert_eq!(PruneLevel::None.accuracy_cost(), 0.0);
        assert_eq!(PruneLevel::default(), PruneLevel::None);
    }

    #[test]
    fn all_scales_positive() {
        for &l in PruneLevel::ALL {
            assert!(l.flops_scale() > 0.0 && l.flops_scale() <= 1.0);
            assert!((0.0..0.1).contains(&l.accuracy_cost()));
        }
    }
}
