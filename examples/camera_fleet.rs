//! Camera fleet: the workload the paper's introduction motivates — a fleet
//! of smart cameras streaming frames at a fixed rate with hard per-frame
//! deadlines, served by a small heterogeneous edge rack. Compares the full
//! method ladder and prints who keeps the fleet within deadline.
//!
//! ```sh
//! cargo run --release --example camera_fleet
//! ```

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::problem::JointProblem;
use scalpel::core::runner;
use scalpel::sim::ArrivalProcess;

/// Make every stream a 10 fps camera with per-frame jitter and a 120 ms
/// frame budget (ResNet/MobileNet analytics-style).
fn cameraize(problem: &mut JointProblem) {
    for s in &mut problem.streams {
        s.arrivals = ArrivalProcess::Periodic {
            period_s: 0.1,
            jitter_frac: 0.2,
        };
        s.deadline_s = 0.120;
    }
}

fn main() {
    let scenario = ScenarioConfig {
        num_aps: 3,
        devices_per_ap: 6,
        ..ScenarioConfig::default()
    };
    let mut problem = scenario.build();
    cameraize(&mut problem);
    println!(
        "camera fleet: {} cameras at 10 fps, 120 ms frame budget",
        problem.streams.len()
    );

    let evaluator = Evaluator::new(&problem, None);
    let opt = OptimizerConfig::default();
    println!(
        "\n{:<14} {:>9} {:>9} {:>9} {:>10} {:>9} {:>11}",
        "method", "mean ms", "p95 ms", "p99 ms", "deadline", "accuracy", "early-exit"
    );
    for &method in Method::ALL {
        let sol = solve_with(&evaluator, method, &opt);
        let reports =
            runner::run_solution_seeds(&problem, &evaluator, &sol, scenario.sim.clone(), &[11, 22]);
        let o = runner::aggregate(method, &sol, &reports);
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9.1} {:>9.1}% {:>9.3} {:>10.1}%",
            method.name(),
            o.latency.mean * 1e3,
            o.latency.p95 * 1e3,
            o.latency.p99 * 1e3,
            o.deadline_ratio * 100.0,
            o.accuracy,
            o.early_exit_fraction * 100.0
        );
    }
}
