//! Capacity planning: how many devices can one edge rack carry before the
//! deadline-satisfaction ratio falls below a target? Joint optimization
//! moves the wall — this example finds the wall for a static baseline and
//! for the joint scheme.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;

const TARGET: f64 = 0.95;

/// Measured deadline ratio for one method at one fleet size.
fn deadline_ratio(devices_per_ap: usize, method: Method) -> f64 {
    let mut scenario = ScenarioConfig {
        num_aps: 2,
        devices_per_ap,
        ..ScenarioConfig::default()
    };
    scenario.sim.horizon_s = 15.0;
    scenario.sim.warmup_s = 2.0;
    let problem = scenario.build();
    let evaluator = Evaluator::new(&problem, None);
    let sol = solve_with(&evaluator, method, &OptimizerConfig::default());
    let reports =
        runner::run_solution_seeds(&problem, &evaluator, &sol, scenario.sim.clone(), &[5]);
    runner::aggregate(method, &sol, &reports).deadline_ratio
}

fn main() {
    println!(
        "capacity planning: max devices with ≥{:.0}% on-time frames",
        TARGET * 100.0
    );
    for method in [Method::Neurosurgeon, Method::Joint] {
        println!("\n{}:", method.name());
        let mut last_ok = 0;
        for devices_per_ap in [2usize, 4, 6, 8, 10, 14, 18] {
            let total = devices_per_ap * 2;
            let ratio = deadline_ratio(devices_per_ap, method);
            let ok = ratio >= TARGET;
            println!(
                "  {:>3} devices -> {:>5.1}% on time {}",
                total,
                ratio * 100.0,
                if ok { "ok" } else { "MISSES TARGET" }
            );
            if ok {
                last_ok = total;
            }
        }
        println!("  => supportable fleet: ~{last_ok} devices");
    }
}
