//! Dynamic adaptation: links degrade at runtime; the online controller
//! warm-starts a re-solve while the stale solution collapses. Also shows
//! the fully distributed best-response controller converging to a Nash
//! equilibrium without any central coordinator.
//!
//! ```sh
//! cargo run --release --example dynamic_adaptation
//! ```

use scalpel::core::config::ScenarioConfig;
use scalpel::core::distributed::{self, DistributedConfig};
use scalpel::core::evaluator::Evaluator;
use scalpel::core::online::{remap_assignment, OnlineController};
use scalpel::core::optimizer::OptimizerConfig;

fn scenario(bandwidth_mhz: f64) -> ScenarioConfig {
    ScenarioConfig {
        num_aps: 2,
        devices_per_ap: 4,
        ap_bandwidth_hz: bandwidth_mhz * 1e6,
        ..ScenarioConfig::default()
    }
}

fn main() {
    let opt = OptimizerConfig::default();

    println!("epoch 0: 20 MHz per AP — bootstrap");
    let ev20 = Evaluator::new(&scenario(20.0).build(), None);
    let mut controller = OnlineController::bootstrap(&ev20, opt.clone());
    println!(
        "  objective {:.4}, {} expected misses",
        controller.solution().result.objective,
        controller.solution().result.expected_misses
    );

    println!("\nepoch 1: links degrade to 4 MHz");
    let ev4 = Evaluator::new(&scenario(4.0).build(), None);
    let stale = remap_assignment(&ev20, &ev4, &controller.solution().assignment.clone());
    let stale_priced = ev4.evaluate(&stale, opt.policies);
    println!(
        "  stale solution re-priced: objective {:.4}, {} expected misses",
        stale_priced.objective, stale_priced.expected_misses
    );
    let report = controller.adapt(&ev20, &ev4);
    println!(
        "  online adapt: objective {:.4} (from {:.4}), {} plans changed, \
         {} placements changed, {:.1} ms re-solve",
        report.adapted_objective,
        report.stale_objective,
        report.plans_changed,
        report.placements_changed,
        report.resolve_ms
    );

    println!("\ndistributed mode (no central controller), same 4 MHz epoch:");
    let out = distributed::solve_distributed(&ev4, &DistributedConfig::default());
    println!(
        "  converged: {} after {} rounds, {} selfish moves; objective {:.4} \
         (centralized warm-start achieved {:.4})",
        out.converged,
        out.rounds,
        out.moves,
        out.solution.result.objective,
        report.adapted_objective
    );
}
