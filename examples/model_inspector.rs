//! Model inspector: print a Keras-style layer table for any zoo model and
//! emit a Graphviz DOT file with cut points highlighted.
//!
//! ```sh
//! cargo run --release --example model_inspector [model] [dot-output.dot]
//! ```

use scalpel::models::{summary, zoo};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "googlenet".into());
    let model = zoo::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown model {name}; options: {:?}", zoo::ALL_NAMES);
        std::process::exit(2);
    });
    print!("{}", summary::layer_table(&model));

    println!("\npartition candidates (single-tensor cuts):");
    for cut in model.cut_points() {
        println!(
            "  after node {:>3}: {:>7.1} KB crossing, {:>5.1}% of FLOPs on device",
            cut.boundary.saturating_sub(1),
            cut.bytes as f64 / 1024.0,
            model.depth_fraction(cut.boundary) * 100.0
        );
    }

    if let Some(path) = std::env::args().nth(2) {
        std::fs::write(&path, summary::to_dot(&model)).expect("write dot file");
        println!("\nDOT graph written to {path} (render with `dot -Tsvg`)");
    }
}
