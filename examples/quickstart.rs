//! Quickstart: build a small heterogeneous-edge scenario, jointly optimize
//! model surgery + resource allocation, and measure the result in the
//! discrete-event simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;

fn main() {
    // 1. A scenario: 2 APs × 4 devices, heterogeneous boards and servers,
    //    Poisson 5 req/s per stream, per-model deadlines.
    let scenario = ScenarioConfig {
        num_aps: 2,
        devices_per_ap: 4,
        arrival_rate_hz: 5.0,
        ..ScenarioConfig::default()
    };
    let problem = scenario.build();
    println!(
        "scenario: {} devices, {} APs, {} servers, {} streams",
        problem.cluster.devices.len(),
        problem.cluster.aps.len(),
        problem.cluster.servers.len(),
        problem.streams.len()
    );

    // 2. Build the per-stream surgery menus and price configurations.
    let evaluator = Evaluator::new(&problem, None);

    // 3. Solve jointly (coordinate descent + Gibbs refinement).
    let solution = solve_with(&evaluator, Method::Joint, &OptimizerConfig::default());
    println!(
        "joint solution: objective {:.4}, {} expected deadline misses",
        solution.result.objective, solution.result.expected_misses
    );
    for (k, idx) in solution.assignment.plan_idx.iter().enumerate() {
        let plan = &evaluator.menu(k)[*idx];
        println!(
            "  stream {k}: cut {} exits {:?} prune {:?} -> server {} \
             (bw {:.2}, compute {:.2})",
            plan.plan.cut,
            plan.plan
                .exits
                .iter()
                .map(|(h, t)| format!("{h}@{t:.2}"))
                .collect::<Vec<_>>(),
            plan.plan.prune,
            solution.assignment.placement[k],
            solution.result.bandwidth_shares[k],
            solution.result.compute_shares[k],
        );
    }

    // 4. Execute in the simulator (3 seeds) and report what was measured.
    let reports = runner::run_solution_seeds(
        &problem,
        &evaluator,
        &solution,
        scenario.sim.clone(),
        &[1, 2, 3],
    );
    let outcome = runner::aggregate(Method::Joint, &solution, &reports);
    println!(
        "simulated: mean {:.1} ms, p99 {:.1} ms, deadline {:.1}%, \
         accuracy {:.3}, early-exit {:.1}%",
        outcome.latency.mean * 1e3,
        outcome.latency.p99 * 1e3,
        outcome.deadline_ratio * 100.0,
        outcome.accuracy,
        outcome.early_exit_fraction * 100.0
    );
}
