//! Surgery explorer: what model surgery does to one backbone in one
//! environment — every cut point, the candidate menu the optimizer would
//! see, and the expected effect of each plan.
//!
//! ```sh
//! cargo run --release --example surgery_explorer [model]
//! # model ∈ {lenet5, alexnet, vgg11, vgg16, resnet18, resnet34,
//! #          resnet50, mobilenet_v2, googlenet}; default resnet18
//! ```

use scalpel::models::{zoo, ProcessorClass};
use scalpel::surgery::candidates::{self, CandidateConfig, ReferenceEnv};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "resnet18".into());
    let model = zoo::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown model {name}; try one of {:?}", zoo::ALL_NAMES);
        std::process::exit(2);
    });
    println!(
        "{}: {} layers, {:.2} GFLOPs, {:.2} M params",
        model.name(),
        model.len(),
        model.total_flops() as f64 / 1e9,
        model.total_params() as f64 / 1e6
    );

    // Every valid single-tensor partition point.
    println!("\ncut points (boundary, depth %, crossing KB):");
    for cut in model.cut_points() {
        println!(
            "  boundary {:>3}  depth {:>5.1}%  tx {:>8.1} KB",
            cut.boundary,
            model.depth_fraction(cut.boundary) * 100.0,
            cut.bytes as f64 / 1024.0
        );
    }

    // The environment: a Jetson Nano behind a 10 MHz link, sharing a T4.
    let nano = ProcessorClass::JetsonNano.spec();
    let env = ReferenceEnv {
        device_sec_per_flop: 1.0 / nano.flops_per_sec,
        tx_sec_per_byte: 8.0 / 60e6, // ~60 Mbit/s uplink
        edge_sec_per_flop: 4.0 / ProcessorClass::EdgeGpuT4.spec().flops_per_sec,
        rtt_s: 2e-3,
    };
    let cfg = CandidateConfig::default();
    let menu = candidates::generate(&model, &env, &cfg);
    println!(
        "\ncandidate menu after Pareto filtering ({} plans; Jetson Nano, \
         60 Mbit/s uplink, shared T4):",
        menu.len()
    );
    println!(
        "  {:<5} {:<18} {:<8} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "cut", "exits", "prune", "dev GF", "tx KB", "edge GF", "lat ms", "acc"
    );
    for c in &menu {
        let p = &c.profile;
        println!(
            "  {:<5} {:<18} {:<8} {:>10.3} {:>10.1} {:>10.3} {:>9.1} {:>8.3}",
            c.plan.cut,
            format!(
                "{:?}",
                c.plan.exits.iter().map(|(h, _)| *h).collect::<Vec<_>>()
            ),
            format!("{:?}", c.plan.prune),
            p.expected_device_flops / 1e9,
            p.tx_bytes * p.remain_prob / 1024.0,
            p.edge_flops * p.remain_prob / 1e9,
            p.reference_latency_s * 1e3,
            p.expected_accuracy
        );
    }
}
