//! `scalpel-serve` — the long-lived planning daemon, replayable.
//!
//! ```text
//! scalpel-serve gen-trace [scenario flags] [--churn-seed S] [--horizon S]
//!                         [--out FILE]
//! scalpel-serve run       [scenario flags] --trace FILE|- [--horizon S]
//!                         [--tick S] [--budget-evals N] [--budget-ms M]
//!                         [--debounce N] [--dwell S] [--margin S]
//!                         [--switch-cost S] [--max-switches N] [--window K]
//!                         [--ungoverned] [--checkpoint FILE] [--restore]
//!                         [--crash-after-tick N] [--status-log FILE]
//! ```
//!
//! `gen-trace` emits a seeded churn trace in the exact-replay text format
//! (`f64`s as bit-pattern hex). `run` builds the same scenario as
//! `scalpel solve`, boots a [`PlanningService`] over it, and replays the
//! trace tick by tick: each tick's checkpoint is written atomically
//! (tmp + rename) *before* the next batch is consumed — the write-ahead
//! discipline that makes `--crash-after-tick N` + `--restore` land on the
//! bit-identical final plan as the run that never crashed (with
//! evaluation-count budgets; wall budgets trade determinism for latency).

use scalpel::core::optimizer::Budget;
use scalpel::core::service::{PlanningService, ServiceConfig};
use scalpel::core::ScenarioConfig;
use scalpel::sim::{ChurnProfile, ChurnTrace};
use std::io::Read as _;
use std::io::Write as _;

/// Common scenario + service flags.
#[derive(Debug, Clone, PartialEq)]
struct ServeFlags {
    devices: usize,
    aps: usize,
    rate: f64,
    bandwidth_mhz: f64,
    seed: u64,
    churn_seed: u64,
    horizon_s: f64,
    tick_s: f64,
    budget_evals: usize,
    budget_ms: Option<u64>,
    debounce: usize,
    dwell_s: f64,
    margin_s: f64,
    switch_cost_s: f64,
    max_switches: usize,
    window: usize,
    ungoverned: bool,
    trace: Option<String>,
    out: Option<String>,
    checkpoint: Option<String>,
    restore: bool,
    crash_after_tick: Option<u64>,
    status_log: Option<String>,
}

impl Default for ServeFlags {
    fn default() -> Self {
        Self {
            devices: 8,
            aps: 2,
            rate: 3.0,
            bandwidth_mhz: 20.0,
            seed: 7,
            churn_seed: 13,
            horizon_s: 60.0,
            tick_s: 2.0,
            budget_evals: 200_000,
            budget_ms: None,
            debounce: 1,
            dwell_s: 10.0,
            margin_s: 0.005,
            switch_cost_s: 0.010,
            max_switches: 2,
            window: 3,
            ungoverned: false,
            trace: None,
            out: None,
            checkpoint: None,
            restore: false,
            crash_after_tick: None,
            status_log: None,
        }
    }
}

fn parse_flags(args: &[String]) -> Result<ServeFlags, String> {
    let mut f = ServeFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take =
            || -> Result<&String, String> { it.next().ok_or_else(|| format!("{a} needs a value")) };
        let num = |a: &str, v: &str| format!("{a}: bad value {v:?}");
        match a.as_str() {
            "--devices" => f.devices = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--aps" => f.aps = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--rate" => f.rate = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--bandwidth" => f.bandwidth_mhz = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--seed" => f.seed = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--churn-seed" => f.churn_seed = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--horizon" => f.horizon_s = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--tick" => f.tick_s = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--budget-evals" => {
                f.budget_evals = take()?.parse().map_err(|e| format!("{a}: {e}"))?
            }
            "--budget-ms" => f.budget_ms = Some(take()?.parse().map_err(|e| format!("{a}: {e}"))?),
            "--debounce" => f.debounce = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--dwell" => f.dwell_s = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--margin" => f.margin_s = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--switch-cost" => {
                f.switch_cost_s = take()?.parse().map_err(|e| format!("{a}: {e}"))?
            }
            "--max-switches" => {
                f.max_switches = take()?.parse().map_err(|e| format!("{a}: {e}"))?
            }
            "--window" => f.window = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--ungoverned" => f.ungoverned = true,
            "--trace" => f.trace = Some(take()?.clone()),
            "--out" => f.out = Some(take()?.clone()),
            "--checkpoint" => f.checkpoint = Some(take()?.clone()),
            "--restore" => f.restore = true,
            "--crash-after-tick" => {
                f.crash_after_tick = Some(take()?.parse().map_err(|e| format!("{a}: {e}"))?)
            }
            "--status-log" => f.status_log = Some(take()?.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        if !f.tick_s.is_finite() || f.tick_s <= 0.0 {
            return Err(num("--tick", &f.tick_s.to_string()));
        }
    }
    if f.devices == 0 || f.aps == 0 || f.devices % f.aps != 0 {
        return Err("--devices must be a positive multiple of --aps".into());
    }
    Ok(f)
}

fn scenario_from(f: &ServeFlags) -> ScenarioConfig {
    ScenarioConfig {
        num_aps: f.aps,
        devices_per_ap: f.devices / f.aps,
        arrival_rate_hz: f.rate,
        ap_bandwidth_hz: f.bandwidth_mhz * 1e6,
        seed: f.seed,
        ..ScenarioConfig::default()
    }
}

fn service_config_from(f: &ServeFlags) -> ServiceConfig {
    let mut cfg = ServiceConfig {
        replan_budget: match f.budget_ms {
            Some(ms) => Budget {
                wall_time: Some(std::time::Duration::from_millis(ms)),
                max_evals: Some(f.budget_evals),
            },
            None => Budget::evals(f.budget_evals),
        },
        debounce_events: f.debounce,
        tick_s: f.tick_s,
        ungoverned: f.ungoverned,
        ..ServiceConfig::default()
    };
    cfg.governor.min_dwell_s = f.dwell_s;
    cfg.governor.hysteresis_margin_s = f.margin_s;
    cfg.governor.switch_cost_s = f.switch_cost_s;
    cfg.governor.max_switches_per_tick = f.max_switches;
    cfg.governor.window = f.window;
    cfg
}

fn read_trace(path: &str) -> Result<ChurnTrace, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    ChurnTrace::from_text(&text).map_err(|e| e.to_string())
}

/// Atomic write: tmp file in the same directory, then rename over the
/// target — a crash mid-write never leaves a torn checkpoint behind.
fn write_atomic(path: &str, content: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, content).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))
}

fn gen_trace(f: &ServeFlags) -> Result<(), String> {
    let problem = scenario_from(f).build();
    let profile = ChurnProfile {
        seed: f.churn_seed,
        ..ChurnProfile::default()
    };
    let trace = profile.plan(
        problem.cluster.devices.len(),
        problem.cluster.aps.len(),
        problem.cluster.servers.len(),
        problem.streams.len(),
        f.horizon_s,
    );
    let text = trace.to_text();
    match &f.out {
        Some(path) => {
            write_atomic(path, &text)?;
            eprintln!(
                "wrote {} events over {:.0} s to {path}",
                trace.events.len(),
                f.horizon_s
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn run(f: &ServeFlags) -> Result<(), String> {
    let trace_path = f.trace.as_deref().ok_or("run requires --trace FILE|-")?;
    let trace = read_trace(trace_path)?;
    let problem = scenario_from(f).build();
    let cfg = service_config_from(f);
    let mut svc = if f.restore {
        let path = f
            .checkpoint
            .as_deref()
            .ok_or("--restore requires --checkpoint FILE")?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let svc = PlanningService::restore(problem, cfg, &text).map_err(|e| e.to_string())?;
        eprintln!(
            "restored from {path}: tick {} / cursor {}",
            svc.status().tick,
            svc.cursor()
        );
        svc
    } else {
        PlanningService::new(problem, cfg).map_err(|e| e.to_string())?
    };
    let mut status_log: Option<std::fs::File> = match &f.status_log {
        Some(path) => Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("{path}: {e}"))?,
        ),
        None => None,
    };
    let mut next = svc.cursor();
    while svc.status().now_s + f.tick_s <= f.horizon_s + 1e-12 {
        let boundary = (svc.status().tick + 1) as f64 * f.tick_s;
        let mut batch_end = next;
        while batch_end < trace.events.len() && trace.events[batch_end].at_s < boundary {
            batch_end += 1;
        }
        if let Err(e) = svc.offer_batch(&trace.events[next..batch_end]) {
            eprintln!("batch rejected: {e}");
        }
        next = batch_end;
        let out = svc.tick();
        if let Some(delta) = &out.delta {
            if !delta.is_empty() {
                println!(
                    "delta tick={} moves={} plan_changes={} objective {:.6} -> {:.6}",
                    delta.tick,
                    delta.moves.len(),
                    delta.plan_changes.len(),
                    delta.objective_before,
                    delta.objective_after,
                );
            }
        }
        let status = svc.status();
        if let Some(log) = &mut status_log {
            writeln!(log, "{}", status.to_line()).map_err(|e| format!("status log: {e}"))?;
        }
        if let Some(path) = &f.checkpoint {
            write_atomic(path, &svc.checkpoint_text())?;
        }
        if let Some(n) = f.crash_after_tick {
            if status.tick >= n {
                eprintln!("simulated crash after tick {n} (checkpoint persisted)");
                return Ok(());
            }
        }
    }
    let status = svc.status();
    println!("final {}", status.to_line());
    let ids = |v: &[usize]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    println!("final-plan {}", ids(&svc.assignment().plan_idx));
    println!("final-place {}", ids(&svc.assignment().placement));
    println!(
        "final-objective {:016x}",
        svc.solution().result.objective.to_bits()
    );
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: scalpel-serve <gen-trace|run> [flags]\n\
         scenario: --devices N --aps N --rate R --bandwidth MHZ --seed S\n\
         gen-trace: --churn-seed S --horizon S [--out FILE]\n\
         run: --trace FILE|- --horizon S --tick S --budget-evals N [--budget-ms M]\n\
         \x20     --debounce N --dwell S --margin S --switch-cost S --max-switches N\n\
         \x20     --window K [--ungoverned] [--checkpoint FILE] [--restore]\n\
         \x20     [--crash-after-tick N] [--status-log FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    let result = match cmd {
        "gen-trace" => parse_flags(rest).and_then(|f| gen_trace(&f)),
        "run" => parse_flags(rest).and_then(|f| run(&f)),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &[&str]) -> Result<ServeFlags, String> {
        parse_flags(&s.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn default_flags_parse() {
        assert_eq!(flags(&[]).unwrap(), ServeFlags::default());
    }

    #[test]
    fn service_flags_parse() {
        let f = flags(&[
            "--devices",
            "16",
            "--aps",
            "2",
            "--trace",
            "trace.txt",
            "--tick",
            "0.5",
            "--budget-evals",
            "5000",
            "--max-switches",
            "1",
            "--ungoverned",
            "--checkpoint",
            "ck.txt",
            "--restore",
            "--crash-after-tick",
            "7",
            "--status-log",
            "status.log",
        ])
        .unwrap();
        assert_eq!(f.devices, 16);
        assert_eq!(f.trace.as_deref(), Some("trace.txt"));
        assert!((f.tick_s - 0.5).abs() < 1e-12);
        assert_eq!(f.budget_evals, 5000);
        assert_eq!(f.max_switches, 1);
        assert!(f.ungoverned && f.restore);
        assert_eq!(f.crash_after_tick, Some(7));
        assert_eq!(f.status_log.as_deref(), Some("status.log"));
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(flags(&["--trace"]).is_err());
        assert!(flags(&["--bogus"]).is_err());
        assert!(flags(&["--tick", "0"]).is_err());
        assert!(flags(&["--tick", "nan"]).is_err());
        assert!(flags(&["--devices", "5", "--aps", "2"]).is_err());
    }

    #[test]
    fn wall_budget_keeps_eval_cap() {
        let f = flags(&["--budget-ms", "50", "--budget-evals", "1234"]).unwrap();
        let cfg = service_config_from(&f);
        assert_eq!(
            cfg.replan_budget.wall_time,
            Some(std::time::Duration::from_millis(50))
        );
        assert_eq!(cfg.replan_budget.max_evals, Some(1234));
    }
}
