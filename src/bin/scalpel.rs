//! `scalpel` — command-line front end.
//!
//! ```text
//! scalpel models
//! scalpel inspect <model>
//! scalpel solve   [--devices N] [--aps N] [--rate R] [--bandwidth MHZ]
//!                 [--method NAME] [--seed S]
//! scalpel compare [--devices N] [--aps N] [--rate R] [--bandwidth MHZ] [--seed S]
//! ```
//!
//! `solve` runs one method (default Joint) on a synthetic scenario and
//! prints both the analytic pricing and the simulated outcome; `compare`
//! runs the whole method ladder.

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;
use scalpel::models::{summary, zoo};

/// Parsed common flags for `solve` / `compare`.
#[derive(Debug, Clone, PartialEq)]
struct ScenarioFlags {
    devices: usize,
    aps: usize,
    rate: f64,
    bandwidth_mhz: f64,
    seed: u64,
    method: Method,
}

impl Default for ScenarioFlags {
    fn default() -> Self {
        Self {
            devices: 16,
            aps: 2,
            rate: 4.0,
            bandwidth_mhz: 20.0,
            seed: 7,
            method: Method::Joint,
        }
    }
}

fn method_by_name(name: &str) -> Option<Method> {
    Method::ALL
        .iter()
        .copied()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

fn parse_flags(args: &[String]) -> Result<ScenarioFlags, String> {
    let mut flags = ScenarioFlags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take =
            || -> Result<&String, String> { it.next().ok_or_else(|| format!("{a} needs a value")) };
        match a.as_str() {
            "--devices" => flags.devices = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--aps" => flags.aps = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--rate" => flags.rate = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--bandwidth" => {
                flags.bandwidth_mhz = take()?.parse().map_err(|e| format!("{a}: {e}"))?
            }
            "--seed" => flags.seed = take()?.parse().map_err(|e| format!("{a}: {e}"))?,
            "--method" => {
                let name = take()?;
                flags.method =
                    method_by_name(name).ok_or_else(|| format!("unknown method {name}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if flags.devices == 0 || flags.aps == 0 || flags.devices % flags.aps != 0 {
        return Err("--devices must be a positive multiple of --aps".into());
    }
    Ok(flags)
}

fn scenario_from(flags: &ScenarioFlags) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        num_aps: flags.aps,
        devices_per_ap: flags.devices / flags.aps,
        arrival_rate_hz: flags.rate,
        ap_bandwidth_hz: flags.bandwidth_mhz * 1e6,
        seed: flags.seed,
        ..ScenarioConfig::default()
    };
    cfg.sim.seed = flags.seed;
    cfg
}

fn print_outcome(o: &runner::MethodOutcome) {
    println!(
        "{:<14} mean {:>8.2} ms | p95 {:>8.2} ms | p99 {:>8.2} ms | on-time {:>5.1}% \
         | acc {:.3} | early-exit {:>4.1}% | device {:>6.1} mJ",
        o.method.name(),
        o.latency.mean * 1e3,
        o.latency.p95 * 1e3,
        o.latency.p99 * 1e3,
        o.deadline_ratio * 100.0,
        o.accuracy,
        o.early_exit_fraction * 100.0,
        o.device_energy_j * 1e3,
    );
}

fn run_method(flags: &ScenarioFlags, method: Method) -> runner::MethodOutcome {
    let scfg = scenario_from(flags);
    let problem = scfg.build();
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(&ev, method, &OptimizerConfig::default());
    let reports = runner::run_solution_seeds(
        &problem,
        &ev,
        &sol,
        scfg.sim.clone(),
        &[flags.seed, flags.seed + 1],
    );
    runner::aggregate(method, &sol, &reports)
}

fn usage() -> ! {
    eprintln!(
        "usage: scalpel <models|inspect <model>|solve [flags]|compare [flags]>\n\
         flags: --devices N --aps N --rate R --bandwidth MHZ --seed S --method NAME"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => {
            for name in zoo::ALL_NAMES {
                let g = zoo::by_name(name).expect("zoo name");
                println!(
                    "{:<14} {:>4} layers  {:>7.2} GFLOPs  {:>8.2} M params",
                    name,
                    g.len(),
                    g.total_flops() as f64 / 1e9,
                    g.total_params() as f64 / 1e6
                );
            }
        }
        Some("inspect") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            match zoo::by_name(name) {
                Some(g) => print!("{}", summary::layer_table(&g)),
                None => {
                    eprintln!("unknown model {name}; options: {:?}", zoo::ALL_NAMES);
                    std::process::exit(2);
                }
            }
        }
        Some("solve") => match parse_flags(&args[1..]) {
            Ok(flags) => {
                println!(
                    "scenario: {} devices / {} APs, {:.0} req/s, {:.0} MHz; method {}",
                    flags.devices,
                    flags.aps,
                    flags.rate,
                    flags.bandwidth_mhz,
                    flags.method.name()
                );
                print_outcome(&run_method(&flags, flags.method));
            }
            Err(e) => {
                eprintln!("error: {e}");
                usage();
            }
        },
        Some("compare") => match parse_flags(&args[1..]) {
            Ok(flags) => {
                println!(
                    "scenario: {} devices / {} APs, {:.0} req/s, {:.0} MHz",
                    flags.devices, flags.aps, flags.rate, flags.bandwidth_mhz
                );
                for &m in Method::ALL {
                    print_outcome(&run_method(&flags, m));
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                usage();
            }
        },
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &[&str]) -> Result<ScenarioFlags, String> {
        parse_flags(&s.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn default_flags_parse() {
        assert_eq!(flags(&[]).unwrap(), ScenarioFlags::default());
    }

    #[test]
    fn all_flags_parse() {
        let f = flags(&[
            "--devices",
            "24",
            "--aps",
            "3",
            "--rate",
            "6.5",
            "--bandwidth",
            "10",
            "--seed",
            "42",
            "--method",
            "neurosurgeon",
        ])
        .unwrap();
        assert_eq!(f.devices, 24);
        assert_eq!(f.aps, 3);
        assert!((f.rate - 6.5).abs() < 1e-12);
        assert!((f.bandwidth_mhz - 10.0).abs() < 1e-12);
        assert_eq!(f.seed, 42);
        assert_eq!(f.method, Method::Neurosurgeon);
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(flags(&["--devices"]).is_err());
        assert!(flags(&["--bogus", "1"]).is_err());
        assert!(flags(&["--method", "nope"]).is_err());
        assert!(flags(&["--devices", "5", "--aps", "2"]).is_err());
        assert!(flags(&["--devices", "0"]).is_err());
    }

    #[test]
    fn method_names_resolve_case_insensitively() {
        assert_eq!(method_by_name("JOINT"), Some(Method::Joint));
        assert_eq!(method_by_name("FixedExit"), Some(Method::FixedExit));
        assert_eq!(method_by_name("unknown"), None);
    }
}
