//! # scalpel — joint model surgery and resource allocation for
//! latency-sensitive DNN inference in heterogeneous edge
//!
//! Facade crate re-exporting the whole workspace. See the README for a
//! quickstart and DESIGN.md for the architecture.
//!
//! ```
//! use scalpel::core::baselines::{solve_with, Method};
//! use scalpel::core::config::ScenarioConfig;
//! use scalpel::core::evaluator::Evaluator;
//! use scalpel::core::optimizer::OptimizerConfig;
//!
//! // A tiny scenario: 1 AP, 2 devices, heterogeneous servers.
//! let mut scenario = ScenarioConfig::default();
//! scenario.num_aps = 1;
//! scenario.devices_per_ap = 2;
//! let problem = scenario.build();
//!
//! // Build per-stream surgery menus and solve jointly.
//! let evaluator = Evaluator::new(&problem, None);
//! let opt = OptimizerConfig { rounds: 2, gibbs_iters: 10, ..Default::default() };
//! let solution = solve_with(&evaluator, Method::Joint, &opt);
//! assert!(solution.result.objective.is_finite());
//!
//! // Joint never loses to full offload on the priced objective.
//! let edge_only = solve_with(&evaluator, Method::EdgeOnly, &opt);
//! assert!(solution.result.objective <= edge_only.result.objective + 1e-9);
//! ```

#![deny(missing_docs)]

pub use scalpel_alloc as alloc;
pub use scalpel_core as core;
pub use scalpel_models as models;
pub use scalpel_sim as sim;
pub use scalpel_surgery as surgery;
