//! Chaos harness for the solver stack: adversarial problem instances —
//! NaN/negative latencies and distances, dead servers and APs, dangling
//! references, unsatisfiable floors — thrown at ingest validation, both
//! evaluation engines, and the anytime solver. The contract under test:
//!
//! * **No panics.** Every adversarial instance is either rejected with a
//!   typed [`ProblemError`] or repaired into a solvable one; nothing in
//!   the validate → price → solve pipeline unwinds.
//! * **Invariants.** Every produced solution has a finite objective,
//!   finite non-negative shares, per-server compute-share sums ≤ 1 and
//!   per-AP bandwidth-share sums ≤ 1.
//! * **Budget adherence.** `solve_with_budget` honors evaluation budgets
//!   to within one per-stream menu scan and wall budgets to within 10%.
//! * **Conservation.** Repaired instances run in the discrete-event
//!   simulator with every generated request accounted for.

use proptest::prelude::*;
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::{self, Budget, EvalMode, OptimizerConfig, SolveOutcome};
use scalpel::core::problem::{JointProblem, StreamSpec};
use scalpel::core::runner;
use scalpel::core::shard::{self, ShardConfig};
use scalpel::core::validate::{validate_problem, ProblemError, ValidationPolicy};
use scalpel::models::{zoo, DifficultyModel, ProcessorClass};
use scalpel::sim::{ApSpec, ArrivalProcess, Cluster, DeviceSpec, ServerSpec, SimConfig};

/// The poison pool: every way a scalar can be hostile.
const BAD: [f64; 7] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    -1.0,
    0.0,
    -0.0,
    1e308,
];

/// One corruption: which field family, which poison, which index.
type Corruption = (u8, u8, u8);

/// An adversarial problem instance: a small well-formed base topology
/// with a batch of random corruptions applied.
#[derive(Debug, Clone)]
struct ChaosProblem {
    devices: usize,
    aps: usize,
    servers: usize,
    corruptions: Vec<Corruption>,
}

fn chaos_strategy() -> impl Strategy<Value = ChaosProblem> {
    (
        1usize..4,
        1usize..3,
        1usize..3,
        prop::collection::vec((0u8..10, 0u8..7, 0u8..4), 0..6),
    )
        .prop_map(|(devices, aps, servers, corruptions)| ChaosProblem {
            devices,
            aps,
            servers,
            corruptions,
        })
}

impl ChaosProblem {
    /// Materialize the instance: valid base problem + corruptions.
    fn build(&self) -> JointProblem {
        let cluster = Cluster {
            devices: (0..self.devices)
                .map(|id| DeviceSpec {
                    id,
                    proc: if id % 2 == 0 {
                        ProcessorClass::Smartphone.spec()
                    } else {
                        ProcessorClass::RaspberryPi4.spec()
                    },
                    ap: id % self.aps,
                    distance_m: 20.0 + 10.0 * id as f64,
                })
                .collect(),
            aps: (0..self.aps)
                .map(|id| ApSpec {
                    id,
                    bandwidth_hz: 20e6,
                    rtt_s: 2e-3,
                })
                .collect(),
            servers: (0..self.servers)
                .map(|id| ServerSpec {
                    id,
                    proc: ProcessorClass::EdgeGpuT4.spec(),
                })
                .collect(),
        };
        let mut p = JointProblem {
            cluster,
            models: vec![zoo::lenet5(10)],
            model_accuracy: vec![0.98],
            streams: (0..self.devices)
                .map(|d| StreamSpec {
                    device: d,
                    model: 0,
                    arrivals: ArrivalProcess::Poisson { rate_hz: 5.0 },
                    deadline_s: 0.2,
                    accuracy_floor: 0.5,
                })
                .collect(),
            difficulty: DifficultyModel::default(),
        };
        for &(site, poison, target) in &self.corruptions {
            let bad = BAD[poison as usize % BAD.len()];
            let d = target as usize % p.cluster.devices.len();
            let a = target as usize % p.cluster.aps.len();
            let s = target as usize % p.cluster.servers.len();
            let k = target as usize % p.streams.len();
            match site % 10 {
                0 => p.cluster.devices[d].distance_m = bad,
                1 => p.cluster.aps[a].bandwidth_hz = bad,
                2 => p.cluster.aps[a].rtt_s = bad,
                3 => p.cluster.servers[s].proc.flops_per_sec = bad,
                4 => p.streams[k].deadline_s = bad,
                5 => p.streams[k].accuracy_floor = if poison % 2 == 0 { bad } else { 2.0 },
                6 => p.model_accuracy[0] = bad,
                7 => p.streams[k].device = 99,
                8 => p.streams[k].model = 7,
                _ => p.streams[k].arrivals = ArrivalProcess::Poisson { rate_hz: bad },
            }
        }
        p
    }
}

/// Solution invariants every engine must uphold on a repaired instance.
fn check_invariants(problem: &JointProblem, ev: &Evaluator, outcome: &SolveOutcome) {
    let r = &outcome.solution.result;
    assert!(r.objective.is_finite(), "objective {}", r.objective);
    let mut per_server = vec![0.0f64; ev.num_servers()];
    let mut per_ap = vec![0.0f64; problem.cluster.aps.len()];
    for k in 0..ev.num_streams() {
        let cs = r.compute_shares[k];
        let bs = r.bandwidth_shares[k];
        assert!(cs.is_finite() && cs >= 0.0, "compute share [{k}] = {cs}");
        assert!(bs.is_finite() && bs >= 0.0, "bandwidth share [{k}] = {bs}");
        assert!(!r.latency_s[k].is_nan(), "latency [{k}] is NaN");
        assert!(r.accuracy[k].is_finite(), "accuracy [{k}]");
        let idx = outcome.solution.assignment.plan_idx[k];
        assert!(idx < ev.menu(k).len(), "plan index out of menu");
        per_server[outcome.solution.assignment.placement[k]] += cs;
        per_ap[problem.cluster.devices[problem.streams[k].device].ap] += bs;
    }
    for (s, &sum) in per_server.iter().enumerate() {
        assert!(sum <= 1.0 + 1e-6, "server {s} compute shares sum {sum}");
    }
    for (a, &sum) in per_ap.iter().enumerate() {
        assert!(sum <= 1.0 + 1e-6, "ap {a} bandwidth shares sum {sum}");
    }
}

/// Validate → repair → price → solve one chaos instance on one engine.
/// Returns whether a solve actually ran (instance wasn't rejected).
fn drive(chaos: &ChaosProblem, mode: EvalMode) -> bool {
    let raw = chaos.build();
    // Strict either accepts or rejects with a typed error — never panics.
    let strict = validate_problem(&raw, &ValidationPolicy::Strict);
    let repaired = match validate_problem(&raw, &ValidationPolicy::repair()) {
        Ok((p, report)) => {
            // A repair pass that changed nothing implies strict acceptance.
            if report.is_clean() {
                assert!(strict.is_ok(), "clean repair but strict rejected");
            }
            p
        }
        Err(e) => {
            // Unfixable: strict must also have rejected it, and the error
            // must render (Display is part of the typed contract).
            assert!(strict.is_err(), "repair rejected what strict accepted");
            assert!(!e.to_string().is_empty());
            return false;
        }
    };
    let ev = match Evaluator::try_new(&repaired, None) {
        Ok(ev) => ev,
        Err(ProblemError::EmptyExitMenu { .. }) => return false,
        Err(e) => panic!("repaired instance re-rejected: {e}"),
    };
    let cfg = OptimizerConfig {
        rounds: 2,
        gibbs_iters: 10,
        eval_mode: mode,
        ..OptimizerConfig::default()
    };
    let cap = 60;
    let outcome = optimizer::solve_with_budget(&ev, &cfg, Budget::evals(cap));
    check_invariants(&repaired, &ev, &outcome);
    let max_menu = (0..ev.num_streams())
        .map(|k| ev.menu(k).len())
        .max()
        .unwrap_or(0);
    assert!(
        outcome.spent.evaluations <= cap + max_menu,
        "evaluation budget overshoot: {} vs {cap} + {max_menu}",
        outcome.spent.evaluations
    );
    true
}

/// The same validate → repair → price pipeline, driven through the
/// sharded solver: typed rejection or a finite, invariant-preserving,
/// budget-respecting solution — never a panic.
fn drive_sharded(chaos: &ChaosProblem) -> bool {
    let raw = chaos.build();
    let Ok((repaired, _)) = validate_problem(&raw, &ValidationPolicy::repair()) else {
        return false;
    };
    let ev = match Evaluator::try_new(&repaired, None) {
        Ok(ev) => ev,
        Err(ProblemError::EmptyExitMenu { .. }) => return false,
        Err(e) => panic!("repaired instance re-rejected: {e}"),
    };
    // The cap must admit the largest AP stream group of the *repaired*
    // problem; anything smaller is a config error, not a chaos finding.
    let largest_group = repaired
        .streams_by_ap()
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(1)
        .max(1);
    let cfg = ShardConfig {
        max_streams: largest_group,
        opt: OptimizerConfig {
            rounds: 2,
            gibbs_iters: 10,
            ..OptimizerConfig::default()
        },
        ..ShardConfig::default()
    };
    let cap = 60;
    let outcome = match shard::solve_sharded_with(&repaired, &ev, &cfg, Budget::evals(cap), None) {
        Ok(o) => o,
        Err(e) => {
            // A typed rejection must render; it is an acceptable outcome.
            assert!(!e.to_string().is_empty());
            return false;
        }
    };
    check_invariants(&repaired, &ev, &outcome.outcome);
    // Evaluation-budget adherence on the sharded path: every shard slice
    // may overshoot by one menu scan (the descent contract), the
    // reconcile pass by one probe, the polish by one more scan.
    let max_menu = (0..ev.num_streams())
        .map(|k| ev.menu(k).len())
        .max()
        .unwrap_or(0);
    let shards = outcome.plan.shards.len();
    let slack = (shards + 1) * (max_menu + 1) + 2;
    assert!(
        outcome.outcome.spent.evaluations <= cap + slack,
        "sharded evaluation budget overshoot: {} vs {cap} + {slack}",
        outcome.outcome.spent.evaluations
    );
    true
}

/// Full chaos volume (1000+ instances per engine) runs in release — the
/// CI chaos job builds `--release`; debug tier-1 runs a 100-case smoke of
/// the same generator so the harness still exercises on every `cargo test`.
const CHAOS_CASES: u32 = if cfg!(debug_assertions) { 100 } else { 1000 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CHAOS_CASES))]

    /// Adversarial instances through the full-evaluation engine:
    /// typed rejection or a valid, invariant-preserving solution.
    #[test]
    fn chaos_full_engine_never_panics(chaos in chaos_strategy()) {
        drive(&chaos, EvalMode::Full);
    }

    /// The same adversarial regime on the incremental engine.
    #[test]
    fn chaos_incremental_engine_never_panics(chaos in chaos_strategy()) {
        drive(&chaos, EvalMode::Incremental);
    }

    /// The same adversarial regime through the sharded solver: partition,
    /// parallel shard solves, reconciliation and polish all survive every
    /// corruption the repair pass lets through.
    #[test]
    fn chaos_sharded_solver_never_panics(chaos in chaos_strategy()) {
        drive_sharded(&chaos);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Repaired chaos instances execute end-to-end in the discrete-event
    /// simulator with every generated request accounted for.
    #[test]
    fn chaos_repaired_instances_conserve_requests(chaos in chaos_strategy()) {
        let raw = chaos.build();
        let Ok((repaired, _)) = validate_problem(&raw, &ValidationPolicy::repair()) else {
            return;
        };
        let Ok(ev) = Evaluator::try_new(&repaired, None) else {
            return;
        };
        let cfg = OptimizerConfig { rounds: 1, gibbs_iters: 0, ..Default::default() };
        let sol = optimizer::solve(&ev, &cfg);
        let sim = SimConfig {
            horizon_s: 3.0,
            warmup_s: 0.5,
            seed: 7,
            ..SimConfig::default()
        };
        let report = runner::try_run_solution(&repaired, &ev, &sol.assignment, &sol.result, sim)
            .expect("repaired instances compile into valid simulator streams");
        prop_assert_eq!(report.generated, report.completed + report.faults.lost());
    }
}

/// Wall-clock budget adherence on a full-size scenario: the solver stops
/// within 10% of the requested wall budget (the CI gate runs this in
/// release alongside the rest of the chaos suite).
#[test]
fn chaos_wall_budget_adherence() {
    let problem = ScenarioConfig::default().build();
    let ev = Evaluator::new(&problem, None);
    let cfg = OptimizerConfig::default();
    let unlimited = optimizer::solve_with_budget(&ev, &cfg, Budget::UNLIMITED);
    let wall = std::time::Duration::from_millis(100);
    // Only meaningful when the unbudgeted solve actually takes longer
    // than the budget; the default scenario does by a wide margin.
    let outcome = optimizer::solve_with_budget(&ev, &cfg, Budget::wall(wall));
    assert!(
        outcome.spent.wall_s <= wall.as_secs_f64() * 1.10,
        "wall budget overshoot: spent {:.4}s against {:.3}s",
        outcome.spent.wall_s,
        wall.as_secs_f64()
    );
    assert!(outcome.solution.result.objective.is_finite());
    if !outcome.converged {
        assert!(outcome.spent.evaluations <= unlimited.spent.evaluations);
    }
}

/// Wall-clock budget adherence on the sharded path: shard slices are cut
/// to 80% of the wall proportionally and additionally capped by the time
/// remaining at task start, so the whole pipeline (shard solves →
/// reconcile → polish) lands within 10% of the requested budget.
#[test]
fn chaos_sharded_wall_budget_adherence() {
    let problem = ScenarioConfig::default().build();
    let ev = Evaluator::new(&problem, None);
    let cfg = ShardConfig {
        // Force several shards so slicing (not a single inherited budget)
        // is what gets exercised.
        max_streams: 10,
        ..ShardConfig::default()
    };
    let wall = std::time::Duration::from_millis(300);
    let outcome = shard::solve_sharded_with(&problem, &ev, &cfg, Budget::wall(wall), None)
        .expect("default scenario is valid");
    assert!(
        outcome.outcome.spent.wall_s <= wall.as_secs_f64() * 1.10,
        "sharded wall budget overshoot: spent {:.4}s against {:.3}s",
        outcome.outcome.spent.wall_s,
        wall.as_secs_f64()
    );
    assert!(outcome.outcome.solution.result.objective.is_finite());
    assert_eq!(
        outcome.plan.shards.len(),
        4,
        "cap of 10 splits 40 streams into 4"
    );
}

/// An evaluation budget large enough to cover the whole search changes
/// nothing: bit-identical traces on both engines.
#[test]
fn chaos_generous_budget_is_bit_identical_to_solve() {
    let problem = ScenarioConfig {
        num_aps: 1,
        devices_per_ap: 3,
        arrival_rate_hz: 4.0,
        ..ScenarioConfig::default()
    }
    .build();
    let ev = Evaluator::new(&problem, None);
    for mode in [EvalMode::Full, EvalMode::Incremental] {
        let cfg = OptimizerConfig {
            eval_mode: mode,
            ..OptimizerConfig::default()
        };
        let plain = optimizer::solve(&ev, &cfg);
        let budgeted = optimizer::solve_with_budget(&ev, &cfg, Budget::evals(usize::MAX));
        assert!(budgeted.converged);
        assert_eq!(
            plain.result.objective.to_bits(),
            budgeted.solution.result.objective.to_bits()
        );
        assert_eq!(plain.trace.objective, budgeted.solution.trace.objective);
        assert_eq!(plain.trace.evaluations, budgeted.solution.trace.evaluations);
        assert_eq!(plain.assignment, budgeted.solution.assignment);
    }
}
