//! Reproducibility: the entire pipeline — scenario build, menu generation,
//! joint search, simulation — is a pure function of its seeds.

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;
use scalpel::sim::SimConfig;

fn scenario() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default();
    cfg.num_aps = 1;
    cfg.devices_per_ap = 4;
    cfg.arrival_rate_hz = 6.0;
    cfg.sim = SimConfig {
        horizon_s: 6.0,
        warmup_s: 1.0,
        seed: 77,
        fading: true,
    };
    cfg
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let problem = scenario().build();
        let ev = Evaluator::new(&problem, None);
        let sol = solve_with(
            &ev,
            Method::Joint,
            &OptimizerConfig {
                rounds: 2,
                gibbs_iters: 30,
                ..Default::default()
            },
        );
        let reports = runner::run_solution_seeds(&problem, &ev, &sol, scenario().sim, &[1, 2]);
        (
            sol.assignment.plan_idx.clone(),
            sol.assignment.placement.clone(),
            sol.result.objective,
            reports.iter().map(|r| r.latency.mean).collect::<Vec<_>>(),
            reports.iter().map(|r| r.completed).collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "plan choices differ");
    assert_eq!(a.1, b.1, "placements differ");
    assert_eq!(a.2, b.2, "objectives differ");
    assert_eq!(a.3, b.3, "simulated latencies differ");
    assert_eq!(a.4, b.4, "completion counts differ");
}

#[test]
fn optimizer_seed_changes_gibbs_exploration_only_deterministically() {
    let problem = scenario().build();
    let ev = Evaluator::new(&problem, None);
    let solve_seeded = |seed: u64| {
        solve_with(
            &ev,
            Method::Joint,
            &OptimizerConfig {
                rounds: 1,
                gibbs_iters: 50,
                seed,
                ..Default::default()
            },
        )
        .result
        .objective
    };
    let a1 = solve_seeded(1);
    let a2 = solve_seeded(1);
    assert_eq!(a1, a2);
}

#[test]
fn simulation_seed_isolation() {
    // Changing only the sim seed must not change the solution, just the
    // measured sample.
    let problem = scenario().build();
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(&ev, Method::Neurosurgeon, &OptimizerConfig::default());
    let r1 = runner::run_solution_seeds(&problem, &ev, &sol, scenario().sim, &[1]);
    let r2 = runner::run_solution_seeds(&problem, &ev, &sol, scenario().sim, &[2]);
    assert_ne!(r1[0].latency.mean, r2[0].latency.mean);
    // but both measure the same system: means within a factor of 2
    let ratio = r1[0].latency.mean / r2[0].latency.mean;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "seeds diverge too much: {ratio}"
    );
}
