//! Reproducibility: the entire pipeline — scenario build, menu generation,
//! joint search, simulation — is a pure function of its seeds.

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;
use scalpel::sim::{FaultProfile, SimConfig};

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        num_aps: 1,
        devices_per_ap: 4,
        arrival_rate_hz: 6.0,
        sim: SimConfig {
            horizon_s: 6.0,
            warmup_s: 1.0,
            seed: 77,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let problem = scenario().build();
        let ev = Evaluator::new(&problem, None);
        let sol = solve_with(
            &ev,
            Method::Joint,
            &OptimizerConfig {
                rounds: 2,
                gibbs_iters: 30,
                ..Default::default()
            },
        );
        let reports = runner::run_solution_seeds(&problem, &ev, &sol, scenario().sim, &[1, 2]);
        (
            sol.assignment.plan_idx.clone(),
            sol.assignment.placement.clone(),
            sol.result.objective,
            reports.iter().map(|r| r.latency.mean).collect::<Vec<_>>(),
            reports.iter().map(|r| r.completed).collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "plan choices differ");
    assert_eq!(a.1, b.1, "placements differ");
    assert_eq!(a.2, b.2, "objectives differ");
    assert_eq!(a.3, b.3, "simulated latencies differ");
    assert_eq!(a.4, b.4, "completion counts differ");
}

/// The scenario with a non-trivial fault plan installed (all four fault
/// classes active at a rate that disrupts most of the run).
fn faulted_scenario(fault_seed: u64) -> ScenarioConfig {
    let mut cfg = scenario();
    cfg.apply_fault_profile(&FaultProfile {
        seed: fault_seed,
        rate_hz: 0.8,
        mean_outage_s: 1.5,
        start_s: 1.0,
        classes: Vec::new(),
    });
    assert!(
        !cfg.sim.faults.is_empty(),
        "profile produced an empty plan; the test would be vacuous"
    );
    cfg
}

#[test]
fn whole_pipeline_with_faults_is_bit_identical() {
    let run = || {
        let cfg = faulted_scenario(5);
        let problem = cfg.build();
        let ev = Evaluator::new(&problem, None);
        let sol = solve_with(
            &ev,
            Method::Joint,
            &OptimizerConfig {
                rounds: 2,
                gibbs_iters: 30,
                ..Default::default()
            },
        );
        let reports = runner::run_solution_seeds(&problem, &ev, &sol, cfg.sim, &[1, 2]);
        (
            sol.assignment.plan_idx.clone(),
            sol.result.objective,
            reports.iter().map(|r| r.latency.mean).collect::<Vec<_>>(),
            reports.iter().map(|r| r.completed).collect::<Vec<_>>(),
            reports.iter().map(|r| r.faults.clone()).collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "plan choices differ");
    assert_eq!(a.1, b.1, "objectives differ");
    assert_eq!(a.2, b.2, "simulated latencies differ");
    assert_eq!(a.3, b.3, "completion counts differ");
    assert_eq!(a.4, b.4, "fault metrics differ");
    let faulted = &a.4[0];
    assert!(faulted.injected > 0, "fault plan never fired");
}

#[test]
fn fault_seed_isolation() {
    // Changing only the fault seed changes the disruption schedule (and
    // therefore the measurement) but not the solution itself.
    let solve_under = |fault_seed: u64| {
        let cfg = faulted_scenario(fault_seed);
        let problem = cfg.build();
        let ev = Evaluator::new(&problem, None);
        let sol = solve_with(&ev, Method::Joint, &OptimizerConfig::default());
        let reports = runner::run_solution_seeds(&problem, &ev, &sol, cfg.sim, &[1]);
        (sol.assignment.plan_idx.clone(), reports)
    };
    let (plans_a, reports_a) = solve_under(5);
    let (plans_b, reports_b) = solve_under(6);
    assert_eq!(plans_a, plans_b, "fault seed leaked into the optimizer");
    assert_ne!(
        (
            reports_a[0].faults.clone(),
            reports_a[0].latency.mean.to_bits()
        ),
        (
            reports_b[0].faults.clone(),
            reports_b[0].latency.mean.to_bits()
        ),
        "different fault seeds produced identical faulted runs"
    );
}

#[test]
fn optimizer_seed_changes_gibbs_exploration_only_deterministically() {
    let problem = scenario().build();
    let ev = Evaluator::new(&problem, None);
    let solve_seeded = |seed: u64| {
        solve_with(
            &ev,
            Method::Joint,
            &OptimizerConfig {
                rounds: 1,
                gibbs_iters: 50,
                seed,
                ..Default::default()
            },
        )
        .result
        .objective
    };
    let a1 = solve_seeded(1);
    let a2 = solve_seeded(1);
    assert_eq!(a1, a2);
}

#[test]
fn simulation_seed_isolation() {
    // Changing only the sim seed must not change the solution, just the
    // measured sample.
    let problem = scenario().build();
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(&ev, Method::Neurosurgeon, &OptimizerConfig::default());
    let r1 = runner::run_solution_seeds(&problem, &ev, &sol, scenario().sim, &[1]);
    let r2 = runner::run_solution_seeds(&problem, &ev, &sol, scenario().sim, &[2]);
    assert_ne!(r1[0].latency.mean, r2[0].latency.mean);
    // but both measure the same system: means within a factor of 2
    let ratio = r1[0].latency.mean / r2[0].latency.mean;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "seeds diverge too much: {ratio}"
    );
}
