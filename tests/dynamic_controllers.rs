//! Integration tests for the dynamic-edge controllers: online adaptation
//! and distributed best response, driven end-to-end through the simulator.

use scalpel::core::compiler;
use scalpel::core::config::ScenarioConfig;
use scalpel::core::distributed::{self, DistributedConfig};
use scalpel::core::evaluator::Evaluator;
use scalpel::core::online::{remap_assignment, OnlineController};
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::sim::{EdgeSim, SimConfig};

fn scenario(bandwidth_mhz: f64) -> ScenarioConfig {
    ScenarioConfig {
        num_aps: 2,
        devices_per_ap: 3,
        ap_bandwidth_hz: bandwidth_mhz * 1e6,
        sim: SimConfig {
            horizon_s: 10.0,
            warmup_s: 1.0,
            seed: 31,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

fn quick_opt() -> OptimizerConfig {
    OptimizerConfig {
        rounds: 2,
        gibbs_iters: 30,
        ..Default::default()
    }
}

fn simulate_mean(
    scfg: &ScenarioConfig,
    ev: &Evaluator,
    asg: &scalpel::core::evaluator::Assignment,
) -> f64 {
    let problem = scfg.build();
    let result = ev.evaluate(asg, quick_opt().policies);
    let streams = compiler::compile(&problem, ev, asg, &result);
    EdgeSim::new(problem.cluster.clone(), streams, scfg.sim.clone())
        .expect("valid streams")
        .run()
        .latency
        .mean
}

#[test]
fn online_adaptation_beats_stale_solution_in_simulation() {
    let scfg20 = scenario(20.0);
    let scfg3 = scenario(3.0);
    let ev20 = Evaluator::new(&scfg20.build(), None);
    let ev3 = Evaluator::new(&scfg3.build(), None);
    let mut ctl = OnlineController::bootstrap(&ev20, quick_opt());
    let stale = remap_assignment(&ev20, &ev3, &ctl.solution().assignment.clone());
    let stale_mean = simulate_mean(&scfg3, &ev3, &stale);
    ctl.adapt(&ev20, &ev3);
    let adapted_mean = simulate_mean(&scfg3, &ev3, &ctl.solution().assignment.clone());
    // Warm-started adaptation must not be (meaningfully) worse in the
    // *measured* world; usually it is clearly better after a 7x collapse.
    assert!(
        adapted_mean <= stale_mean * 1.10,
        "adapted {adapted_mean} vs stale {stale_mean}"
    );
}

#[test]
fn distributed_solution_executes_and_meets_most_deadlines() {
    let scfg = scenario(20.0);
    let problem = scfg.build();
    let ev = Evaluator::new(&problem, None);
    let out = distributed::solve_distributed(&ev, &DistributedConfig::default());
    let streams = compiler::compile(
        &problem,
        &ev,
        &out.solution.assignment,
        &out.solution.result,
    );
    let report = EdgeSim::new(problem.cluster.clone(), streams, scfg.sim.clone())
        .expect("valid streams")
        .run();
    assert!(report.completed > 50);
    assert!(
        report.deadline_ratio > 0.8,
        "distributed ratio {}",
        report.deadline_ratio
    );
}

#[test]
fn utilization_is_reported_and_bounded_for_controller_solutions() {
    let scfg = scenario(20.0);
    let problem = scfg.build();
    let ev = Evaluator::new(&problem, None);
    let ctl = OnlineController::bootstrap(&ev, quick_opt());
    let result = ev.evaluate(&ctl.solution().assignment.clone(), quick_opt().policies);
    let streams = compiler::compile(&problem, &ev, &ctl.solution().assignment.clone(), &result);
    let report = EdgeSim::new(problem.cluster.clone(), streams, scfg.sim.clone())
        .expect("valid streams")
        .run();
    assert_eq!(
        report.server_utilization.len(),
        problem.cluster.servers.len()
    );
    for &u in &report.server_utilization {
        assert!((0.0..=1.0).contains(&u));
    }
}
