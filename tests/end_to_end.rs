//! End-to-end integration: scenario → menus → joint search → compile →
//! simulate, across crates.

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;
use scalpel::sim::SimConfig;

fn small_scenario() -> ScenarioConfig {
    ScenarioConfig {
        num_aps: 2,
        devices_per_ap: 3,
        arrival_rate_hz: 5.0,
        sim: SimConfig {
            horizon_s: 10.0,
            warmup_s: 1.0,
            seed: 9,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    }
}

fn quick_opt() -> OptimizerConfig {
    OptimizerConfig {
        rounds: 2,
        gibbs_iters: 40,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_every_method() {
    let scenario = small_scenario();
    let problem = scenario.build();
    problem.validate().unwrap();
    let ev = Evaluator::new(&problem, None);
    for &method in Method::ALL {
        let sol = solve_with(&ev, method, &quick_opt());
        let reports = runner::run_solution_seeds(&problem, &ev, &sol, scenario.sim.clone(), &[1]);
        let o = runner::aggregate(method, &sol, &reports);
        assert!(o.completed > 0, "{}: no completions", method.name());
        assert!(
            o.latency.mean > 0.0 && o.latency.mean.is_finite(),
            "{}: bad latency",
            method.name()
        );
        assert!(
            o.accuracy > 0.4 && o.accuracy <= 1.0,
            "{}: accuracy {}",
            method.name(),
            o.accuracy
        );
    }
}

#[test]
fn joint_beats_static_baselines_in_simulation() {
    let scenario = small_scenario();
    let problem = scenario.build();
    let ev = Evaluator::new(&problem, None);
    let measure = |method: Method| -> f64 {
        let sol = solve_with(&ev, method, &quick_opt());
        let reports =
            runner::run_solution_seeds(&problem, &ev, &sol, scenario.sim.clone(), &[1, 2]);
        runner::aggregate(method, &sol, &reports).latency.mean
    };
    let joint = measure(Method::Joint);
    let edge_only = measure(Method::EdgeOnly);
    let device_only = measure(Method::DeviceOnly);
    // The headline shape: Joint must clearly beat both static extremes.
    assert!(
        joint < edge_only,
        "joint {joint} not better than edge-only {edge_only}"
    );
    assert!(
        joint < device_only,
        "joint {joint} not better than device-only {device_only}"
    );
}

#[test]
fn accuracy_floor_is_respected_end_to_end() {
    let scenario = small_scenario();
    let problem = scenario.build();
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(&ev, Method::Joint, &quick_opt());
    for (k, spec) in problem.streams.iter().enumerate() {
        let plan = &ev.menu(k)[sol.assignment.plan_idx[k]];
        assert!(
            plan.exp_accuracy + 1e-9 >= spec.accuracy_floor,
            "stream {k}: accuracy {} below floor {}",
            plan.exp_accuracy,
            spec.accuracy_floor
        );
    }
}

#[test]
fn deadline_pressure_increases_offload_or_exits() {
    // With very tight deadlines the joint solution should lean on the edge
    // (devices are too slow alone); with loose deadlines anything goes.
    let scenario = small_scenario();
    let mut problem = scenario.build();
    for s in &mut problem.streams {
        s.deadline_s = 0.05;
    }
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(&ev, Method::Joint, &quick_opt());
    // At least one stream must use the edge under 50 ms deadlines (weak
    // devices cannot run the heavy zoo models alone that fast).
    let offloaded = (0..ev.num_streams())
        .filter(|&k| !ev.menu(k)[sol.assignment.plan_idx[k]].is_device_only())
        .count();
    assert!(offloaded > 0);
}

#[test]
fn simulated_misses_track_analytic_misses() {
    let scenario = small_scenario();
    let problem = scenario.build();
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(&ev, Method::Joint, &quick_opt());
    let reports = runner::run_solution_seeds(&problem, &ev, &sol, scenario.sim.clone(), &[3]);
    let o = runner::aggregate(Method::Joint, &sol, &reports);
    // If the analytic model expects zero misses, simulation should be at
    // least 80% on time (fading/queueing tails account for the gap).
    if sol.result.expected_misses == 0 {
        assert!(
            o.deadline_ratio > 0.8,
            "analytic said feasible, sim ratio {}",
            o.deadline_ratio
        );
    }
}
