//! Golden-snapshot regression test: a fixed scenario + fault plan must
//! keep producing exactly this summary. If a legitimate change to the
//! simulator or fault layer moves these numbers, re-pin them consciously —
//! the point is that they never move *silently*.

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;
use scalpel::sim::{FaultProfile, RecoveryConfig, SimConfig, SimReport};

/// The frozen scenario: 1 AP × 4 devices, 6 s horizon, all four fault
/// classes injected at 0.8 faults/s from t = 1 s. Every knob is pinned.
fn golden_report() -> SimReport {
    let mut cfg = ScenarioConfig {
        num_aps: 1,
        devices_per_ap: 4,
        arrival_rate_hz: 6.0,
        seed: 7,
        sim: SimConfig {
            horizon_s: 6.0,
            warmup_s: 1.0,
            seed: 77,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.apply_fault_profile(&FaultProfile {
        seed: 5,
        rate_hz: 1.2,
        mean_outage_s: 1.5,
        start_s: 1.0,
        classes: Vec::new(),
    });
    let problem = cfg.build();
    let ev = Evaluator::new(&problem, None);
    // Deterministic solve: descent only, no Gibbs exploration.
    let sol = solve_with(
        &ev,
        Method::Neurosurgeon,
        &OptimizerConfig {
            rounds: 1,
            gibbs_iters: 0,
            ..Default::default()
        },
    );
    runner::run_solution_seeds(&problem, &ev, &sol, cfg.sim, &[1])
        .pop()
        .expect("one seed, one report")
}

#[test]
fn golden_faulted_run_summary_is_pinned() {
    let r = golden_report();
    let summary = (
        r.generated,
        r.completed,
        r.faults.stranded,
        r.faults.stalled,
        r.faults.injected,
        r.faults.applied,
        r.faults.recoveries,
        (r.latency.p99 * 1e3).round() as i64, // p99 bucket, whole ms
    );
    println!("golden summary: {summary:?}");
    assert_eq!(
        summary,
        (95, 94, 1, 0, 16, 12, 5, 3172),
        "golden summary moved — re-pin only if the change is intentional"
    );
    // Structural invariants of the pinned run (guard the pin itself).
    assert_eq!(r.generated, r.completed + r.faults.lost());
    assert!(r.faults.injected > 0, "the pinned plan must actually fire");
}

/// The same frozen scenario with the full recovery ladder switched on.
fn golden_recovered_report() -> SimReport {
    let mut cfg = ScenarioConfig {
        num_aps: 1,
        devices_per_ap: 4,
        arrival_rate_hz: 6.0,
        seed: 7,
        sim: SimConfig {
            horizon_s: 6.0,
            warmup_s: 1.0,
            seed: 77,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.apply_fault_profile(&FaultProfile {
        seed: 5,
        rate_hz: 1.2,
        mean_outage_s: 1.5,
        start_s: 1.0,
        classes: Vec::new(),
    });
    cfg.apply_recovery(RecoveryConfig::full());
    let problem = cfg.build();
    let ev = Evaluator::new(&problem, None);
    let sol = solve_with(
        &ev,
        Method::Neurosurgeon,
        &OptimizerConfig {
            rounds: 1,
            gibbs_iters: 0,
            ..Default::default()
        },
    );
    runner::run_solution_seeds(&problem, &ev, &sol, cfg.sim, &[1])
        .pop()
        .expect("one seed, one report")
}

#[test]
fn golden_recovered_run_summary_is_pinned() {
    let r = golden_recovered_report();
    let summary = (
        r.generated,
        r.completed,
        r.recovery.degraded,
        r.recovery.shed,
        r.recovery.timeouts,
        r.recovery.retries,
        r.recovery.hedges,
        r.recovery.breaker_opens,
        r.faults.stranded,
        r.faults.stalled,
        (r.recovery.mean_degraded_accuracy * 1e4).round() as i64,
    );
    println!("golden recovered summary: {summary:?}");
    assert_eq!(
        summary,
        (95, 75, 19, 0, 11, 1, 1, 3, 1, 0, 6286),
        "golden recovered summary moved — re-pin only if the change is intentional"
    );
    // The extended conservation law must hold on the pinned run.
    assert_eq!(r.generated, r.accounted());
}

/// Identical config (recovery included) reruns bit-for-bit.
#[test]
fn golden_recovered_run_is_bit_identical_on_rerun() {
    let a = golden_recovered_report();
    let b = golden_recovered_report();
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.latency.mean.to_bits(), b.latency.mean.to_bits());
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.recovery, b.recovery);
}
