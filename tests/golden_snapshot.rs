//! Golden-snapshot regression test: a fixed scenario + fault plan must
//! keep producing exactly this summary. If a legitimate change to the
//! simulator or fault layer moves these numbers, re-pin them consciously —
//! the point is that they never move *silently*.

use scalpel::core::baselines::{solve_with, Method};
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::OptimizerConfig;
use scalpel::core::runner;
use scalpel::sim::{FaultProfile, SimConfig, SimReport};

/// The frozen scenario: 1 AP × 4 devices, 6 s horizon, all four fault
/// classes injected at 0.8 faults/s from t = 1 s. Every knob is pinned.
fn golden_report() -> SimReport {
    let mut cfg = ScenarioConfig {
        num_aps: 1,
        devices_per_ap: 4,
        arrival_rate_hz: 6.0,
        seed: 7,
        sim: SimConfig {
            horizon_s: 6.0,
            warmup_s: 1.0,
            seed: 77,
            fading: true,
            ..SimConfig::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.apply_fault_profile(&FaultProfile {
        seed: 5,
        rate_hz: 1.2,
        mean_outage_s: 1.5,
        start_s: 1.0,
        classes: Vec::new(),
    });
    let problem = cfg.build();
    let ev = Evaluator::new(&problem, None);
    // Deterministic solve: descent only, no Gibbs exploration.
    let sol = solve_with(
        &ev,
        Method::Neurosurgeon,
        &OptimizerConfig {
            rounds: 1,
            gibbs_iters: 0,
            ..Default::default()
        },
    );
    runner::run_solution_seeds(&problem, &ev, &sol, cfg.sim, &[1])
        .pop()
        .expect("one seed, one report")
}

#[test]
fn golden_faulted_run_summary_is_pinned() {
    let r = golden_report();
    let summary = (
        r.generated,
        r.completed,
        r.faults.stranded,
        r.faults.stalled,
        r.faults.injected,
        r.faults.applied,
        r.faults.recoveries,
        (r.latency.p99 * 1e3).round() as i64, // p99 bucket, whole ms
    );
    println!("golden summary: {summary:?}");
    assert_eq!(
        summary,
        (95, 94, 1, 0, 16, 12, 5, 3172),
        "golden summary moved — re-pin only if the change is intentional"
    );
    // Structural invariants of the pinned run (guard the pin itself).
    assert_eq!(r.generated, r.completed + r.faults.lost());
    assert!(r.faults.injected > 0, "the pinned plan must actually fire");
}
