//! Property tests for the incremental evaluation layer: on random
//! topologies, random plan flips and server moves priced through
//! [`EvalContext`] must match a fresh full evaluation — not just within
//! 1e-9, but bit for bit — and the search must walk identical
//! trajectories under both evaluation backends.

use proptest::prelude::*;
use scalpel::core::config::{ScenarioConfig, ServerMix};
use scalpel::core::eval_context::{DeltaScratch, EvalContext};
use scalpel::core::evaluator::{AllocPolicies, Assignment, Evaluator};
use scalpel::core::optimizer::{self, EvalMode, OptimizerConfig};
use scalpel::sim::SimRng;

/// Scenario axes small enough to keep 64 cases fast but varied: topology
/// shape, load, server rack, and allocation policies.
#[derive(Debug, Clone)]
struct Scen {
    num_aps: usize,
    devices_per_ap: usize,
    arrival_rate_hz: f64,
    /// 0 = the standard four-box rack; 1..=4 = that many synthetic servers.
    synthetic_servers: usize,
    seed: u64,
    equal_policies: bool,
}

fn scen_strategy() -> impl Strategy<Value = Scen> {
    (
        1usize..4,
        1usize..5,
        1.0f64..10.0,
        0usize..5,
        0u64..1_000,
        any::<bool>(),
    )
        .prop_map(
            |(
                num_aps,
                devices_per_ap,
                arrival_rate_hz,
                synthetic_servers,
                seed,
                equal_policies,
            )| {
                Scen {
                    num_aps,
                    devices_per_ap,
                    arrival_rate_hz,
                    synthetic_servers,
                    seed,
                    equal_policies,
                }
            },
        )
}

fn build(s: &Scen) -> (Evaluator, AllocPolicies) {
    let cfg = ScenarioConfig {
        num_aps: s.num_aps,
        devices_per_ap: s.devices_per_ap,
        arrival_rate_hz: s.arrival_rate_hz,
        servers: match s.synthetic_servers {
            0 => ServerMix::Standard,
            count => ServerMix::Synthetic {
                count,
                mean_fps: 5e11,
                cv: 0.4,
            },
        },
        seed: s.seed,
        ..ScenarioConfig::default()
    };
    let ev = Evaluator::new(&cfg.build(), None);
    let policies = if s.equal_policies {
        AllocPolicies::equal()
    } else {
        AllocPolicies::optimal()
    };
    (ev, policies)
}

fn random_assignment(ev: &Evaluator, rng: &mut SimRng) -> Assignment {
    Assignment {
        plan_idx: (0..ev.num_streams())
            .map(|k| rng.index(ev.menu(k).len()))
            .collect(),
        placement: (0..ev.num_streams())
            .map(|_| rng.index(ev.num_servers()))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A freshly built context prices exactly like the evaluator.
    #[test]
    fn context_matches_full_evaluation(s in scen_strategy()) {
        let (ev, policies) = build(&s);
        let mut rng = SimRng::new(s.seed, 17);
        let asg = random_assignment(&ev, &mut rng);
        let full = ev.evaluate(&asg, policies);
        let ctx = EvalContext::new(&ev, asg, policies);
        prop_assert_eq!(full.objective.to_bits(), ctx.objective().to_bits());
        let r = ctx.result();
        for k in 0..ev.num_streams() {
            prop_assert_eq!(full.latency_s[k].to_bits(), r.latency_s[k].to_bits());
            prop_assert_eq!(full.compute_shares[k].to_bits(), r.compute_shares[k].to_bits());
            prop_assert_eq!(full.bandwidth_shares[k].to_bits(), r.bandwidth_shares[k].to_bits());
        }
        prop_assert_eq!(full.expected_misses, r.expected_misses);
    }

    /// Delta trials of random flips and moves equal a fresh evaluation of
    /// the probed assignment, bitwise (the ≤1e-9 contract, strengthened).
    #[test]
    fn delta_trials_match_fresh(s in scen_strategy(), probes in 1usize..12) {
        let (ev, policies) = build(&s);
        let mut rng = SimRng::new(s.seed, 29);
        let asg = random_assignment(&ev, &mut rng);
        let ctx = EvalContext::new(&ev, asg.clone(), policies);
        let mut scratch = DeltaScratch::default();
        for _ in 0..probes {
            let k = rng.index(ev.num_streams());
            let (delta, probe) = if rng.index(2) == 0 {
                let idx = rng.index(ev.menu(k).len());
                let mut p = asg.clone();
                p.plan_idx[k] = idx;
                (ctx.evaluate_delta(k, idx, &mut scratch), p)
            } else {
                let srv = rng.index(ev.num_servers());
                let mut p = asg.clone();
                p.placement[k] = srv;
                (ctx.evaluate_move(k, srv, &mut scratch), p)
            };
            let fresh = ev.evaluate(&probe, policies).objective;
            prop_assert_eq!(delta.to_bits(), fresh.to_bits(),
                "trial {} vs fresh {}", delta, fresh);
        }
        // Trials never mutate the context.
        prop_assert_eq!(
            ctx.objective().to_bits(),
            ev.evaluate(&asg, policies).objective.to_bits()
        );
    }

    /// A random walk of committed flips and moves keeps every cache equal
    /// to a from-scratch rebuild at each step.
    #[test]
    fn committed_walk_stays_exact(s in scen_strategy(), steps in 1usize..16) {
        let (ev, policies) = build(&s);
        let mut rng = SimRng::new(s.seed, 43);
        let asg = random_assignment(&ev, &mut rng);
        let mut ctx = EvalContext::new(&ev, asg, policies);
        for _ in 0..steps {
            let k = rng.index(ev.num_streams());
            if rng.index(2) == 0 {
                ctx.commit_plan(k, rng.index(ev.menu(k).len()));
            } else {
                ctx.commit_move(k, rng.index(ev.num_servers()));
            }
            ctx.assert_matches_fresh();
            let fresh = ev.evaluate(&ctx.assignment(), policies).objective;
            prop_assert_eq!(ctx.objective().to_bits(), fresh.to_bits());
        }
    }

    /// Both evaluation backends drive the search along the same path:
    /// identical objective traces (bitwise), evaluation counts, and final
    /// assignments.
    #[test]
    fn search_traces_identical_across_backends(s in scen_strategy()) {
        let (ev, policies) = build(&s);
        let base = OptimizerConfig {
            rounds: 2,
            gibbs_iters: 25,
            policies,
            seed: s.seed,
            ..Default::default()
        };
        let full = optimizer::solve(&ev, &OptimizerConfig {
            eval_mode: EvalMode::Full,
            ..base.clone()
        });
        let inc = optimizer::solve(&ev, &OptimizerConfig {
            eval_mode: EvalMode::Incremental,
            ..base
        });
        prop_assert_eq!(full.trace.evaluations, inc.trace.evaluations);
        prop_assert_eq!(full.trace.objective.len(), inc.trace.objective.len());
        for (i, (a, b)) in full.trace.objective.iter().zip(&inc.trace.objective).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "trace[{}]: {} vs {}", i, a, b);
        }
        prop_assert_eq!(full.assignment, inc.assignment);
        prop_assert_eq!(
            full.result.objective.to_bits(),
            inc.result.objective.to_bits()
        );
    }
}
