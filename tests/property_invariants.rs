//! Property-based invariants spanning crates (proptest).

use proptest::prelude::*;
use scalpel::alloc::convex::{self, HyperbolicDemand};
use scalpel::models::{zoo, DifficultyModel};
use scalpel::surgery::pareto;
use scalpel::surgery::plan::SurgeryPlan;
use scalpel::surgery::pruning::PruneLevel;

fn demand_strategy() -> impl Strategy<Value = HyperbolicDemand> {
    (0.0f64..0.2, 0.0001f64..0.5).prop_map(|(fixed, scaled)| HyperbolicDemand::new(fixed, scaled))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Water-filling always returns a simplex allocation and satisfies the
    /// KKT stationarity condition (equal marginal costs).
    #[test]
    fn weighted_sum_shares_kkt(
        demands in prop::collection::vec(demand_strategy(), 1..12),
        weights in prop::collection::vec(0.1f64..5.0, 12),
    ) {
        let weights = &weights[..demands.len()];
        let shares = convex::weighted_sum_shares(&demands, weights);
        let total: f64 = shares.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        let marginals: Vec<f64> = demands
            .iter()
            .zip(weights)
            .zip(&shares)
            .filter(|((d, _), &c)| d.scaled > 0.0 && c > 0.0)
            .map(|((d, &w), &c)| w * d.scaled / (c * c))
            .collect();
        if marginals.len() >= 2 {
            let first = marginals[0];
            for m in &marginals[1..] {
                prop_assert!((m - first).abs() < 1e-6 * first.max(1.0),
                    "marginals differ: {m} vs {first}");
            }
        }
    }

    /// Min-max allocation equalizes latencies of served streams and no
    /// perturbation lowers the max.
    #[test]
    fn minmax_shares_equalize(
        demands in prop::collection::vec(demand_strategy(), 2..10),
    ) {
        let (lambda, shares) = convex::minmax_shares(&demands);
        let total: f64 = shares.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for (d, &c) in demands.iter().zip(&shares) {
            let lat = d.latency(c);
            prop_assert!((lat - lambda).abs() < 1e-4 * lambda.max(1e-9),
                "latency {lat} vs lambda {lambda}");
        }
    }

    /// Deadline shares, when they exist, meet every deadline.
    #[test]
    fn deadline_shares_meet_deadlines(
        demands in prop::collection::vec(demand_strategy(), 1..10),
        slack in 1.5f64..20.0,
    ) {
        // Construct comfortably feasible deadlines.
        let n = demands.len() as f64;
        let deadlines: Vec<f64> = demands
            .iter()
            .map(|d| d.fixed + d.scaled * n * slack)
            .collect();
        if let Some(shares) = convex::deadline_shares(&demands, &deadlines, &vec![1.0; demands.len()]) {
            let total: f64 = shares.iter().sum();
            prop_assert!(total <= 1.0 + 1e-6);
            for (d, (&c, &dl)) in demands.iter().zip(shares.iter().zip(&deadlines)) {
                prop_assert!(d.latency(c) <= dl + 1e-6);
            }
        }
    }

    /// The Pareto filter never removes a point that is minimal on some
    /// coordinate, and every removed point is dominated by some survivor.
    #[test]
    fn pareto_filter_sound(
        points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 1..40),
    ) {
        let survivors = pareto::pareto_filter(points.clone(), |&(a, b, c)| vec![a, b, c]);
        prop_assert!(!survivors.is_empty());
        for p in &points {
            let kept = survivors.contains(p);
            if !kept {
                let dominated = survivors.iter().any(|s| {
                    pareto::dominates(&[s.0, s.1, s.2], &[p.0, p.1, p.2])
                        || (s.0 == p.0 && s.1 == p.1 && s.2 == p.2)
                });
                prop_assert!(dominated, "removed point {p:?} not dominated");
            }
        }
    }

    /// Difficulty-model behaviors are proper distributions for arbitrary
    /// exit chains, and accuracy stays in [0, 1].
    #[test]
    fn exit_behavior_is_distribution(
        profile in prop::collection::vec((0.01f64..0.99, 0.0f64..0.99), 0..6),
    ) {
        let mut sorted = profile.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let m = DifficultyModel::default();
        let b = m.behavior(&sorted);
        let total: f64 = b.exit_probs.iter().sum::<f64>() + b.remain_prob;
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(b.exit_probs.iter().all(|&p| p >= -1e-12));
        prop_assert!((0.0..=1.0).contains(&b.expected_accuracy));
        // sample_exit is consistent with the cumulative bands
        for u in [0.05, 0.35, 0.65, 0.95] {
            match b.sample_exit(u) {
                Some(i) => prop_assert!(u < b.cum[i]),
                None => prop_assert!(b.cum.last().is_none_or(|&c| u >= c)),
            }
        }
    }

    /// Any cut chosen from `cut_points()` yields a valid surgery plan, and
    /// prefix/suffix FLOPs stay complementary under pruning bookkeeping.
    #[test]
    fn random_cut_plans_validate(model_idx in 0usize..4, cut_choice in 0usize..100) {
        let g = zoo::standard_zoo().swap_remove(model_idx);
        let cuts = g.cut_points();
        let cut = &cuts[cut_choice % cuts.len()];
        let plan = SurgeryPlan {
            cut: cut.boundary,
            exits: vec![],
            prune: PruneLevel::Medium,
            quantize_tx: false,
        };
        prop_assert!(plan.validate(&g).is_ok());
        prop_assert_eq!(
            g.prefix_flops(cut.boundary) + g.suffix_flops(cut.boundary),
            g.total_flops()
        );
    }
}
