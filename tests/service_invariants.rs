//! Property invariants of the [`SwitchGovernor`] and a golden-pinned
//! checkpoint→crash→restore replay of the planning service
//! (DESIGN.md §2.13).
//!
//! The governor properties are exactly the hysteresis contract: the
//! minimum dwell time is never violated, the per-tick switch count is
//! bounded, and the accepted-switch set shrinks monotonically as the
//! hysteresis margin grows. The replay test kills a service mid-trace,
//! restores it from its last checkpoint, and requires the resumed run's
//! final checkpoint to be *bit-identical* (string-equal, with every f64
//! serialized as its IEEE-754 bit pattern) to a run that never stopped.
//!
//! [`SwitchGovernor`]: scalpel::core::service::SwitchGovernor

use proptest::prelude::*;
use scalpel::core::config::ScenarioConfig;
use scalpel::core::evaluator::{Assignment, EvalResult};
use scalpel::core::optimizer::{Budget, OptimizerConfig};
use scalpel::core::service::{GovernorConfig, PlanningService, ServiceConfig, SwitchGovernor};
use scalpel::sim::{ChurnProfile, ChurnTrace};

/// An incumbent pricing carrying only what the governor reads.
fn eval_with_latencies(latency_s: Vec<f64>) -> EvalResult {
    let n = latency_s.len();
    EvalResult {
        latency_s,
        accuracy: vec![0.9; n],
        bandwidth_shares: vec![0.0; n],
        compute_shares: vec![0.0; n],
        objective: 0.0,
        expected_misses: 0,
        device_energy_j: vec![0.0; n],
        total_energy_j: vec![0.0; n],
    }
}

/// One governor tick's synthetic inputs: incumbent latencies (observed
/// into the rolling windows), a candidate placement, and the candidate's
/// priced per-stream latencies.
type TickInput = (Vec<f64>, Vec<usize>, Vec<f64>);

fn cfg_strategy() -> impl Strategy<Value = GovernorConfig> {
    (
        0.0f64..12.0, // min_dwell_s
        0.0f64..0.02, // switch_cost_s
        0.0f64..0.02, // hysteresis_margin_s
        0usize..4,    // max_switches_per_tick
        1usize..4,    // window
    )
        .prop_map(
            |(min_dwell_s, switch_cost_s, hysteresis_margin_s, max_switches_per_tick, window)| {
                GovernorConfig {
                    min_dwell_s,
                    switch_cost_s,
                    hysteresis_margin_s,
                    max_switches_per_tick,
                    window,
                }
            },
        )
}

/// Widest stream count the scripts exercise; each test slices the
/// per-tick vectors down to its drawn `streams` (the vendored proptest
/// has no `prop_flat_map`, so sizes cannot depend on other draws).
const MAX_STREAMS: usize = 5;

fn script_strategy() -> impl Strategy<Value = Vec<TickInput>> {
    prop::collection::vec(
        (
            prop::collection::vec(1e-3f64..0.2, MAX_STREAMS),
            prop::collection::vec(0usize..64, MAX_STREAMS),
            prop::collection::vec(1e-3f64..0.2, MAX_STREAMS),
        ),
        1..14,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying an arbitrary script of observe+govern ticks, the
    /// governor never lets a stream switch twice within `min_dwell_s`,
    /// never switches before its window holds `window` samples, never
    /// exceeds `max_switches_per_tick`, adopts exactly (candidate plans,
    /// incumbent placements except accepted switches), and accounts for
    /// every proposed switch in exactly one rejection bucket.
    #[test]
    fn governor_dwell_cap_and_accounting_hold(
        cfg in cfg_strategy(),
        streams in 1usize..MAX_STREAMS + 1,
        servers in 2usize..5,
        script in script_strategy(),
        tick_s in 0.5f64..3.0,
    ) {
        let mut gov = SwitchGovernor::new(cfg, streams);
        let mut warm = Assignment {
            plan_idx: vec![0; streams],
            placement: vec![0; streams],
        };
        let mut last_accept = vec![f64::NEG_INFINITY; streams];
        for (i, (inc_lat, cand_place, cand_lat)) in script.iter().enumerate() {
            let observes = i + 1;
            let now_s = observes as f64 * tick_s;
            gov.observe(&eval_with_latencies(inc_lat[..streams].to_vec()));
            let candidate = Assignment {
                plan_idx: vec![1; streams],
                placement: cand_place[..streams].iter().map(|p| p % servers).collect(),
            };
            let cand_lat = &cand_lat[..streams];
            let d = gov.govern(now_s, &warm, &candidate, cand_lat);

            // Per-tick switch cap.
            prop_assert!(d.switched.len() <= cfg.max_switches_per_tick,
                "tick {i}: {} switches > cap {}", d.switched.len(), cfg.max_switches_per_tick);
            // No switch before the rolling window is full.
            if !d.switched.is_empty() {
                prop_assert!(observes >= cfg.window,
                    "tick {i}: switched after {observes} observes with window {}", cfg.window);
            }
            // Dwell-time gate, using the same subtraction govern uses.
            for &k in &d.switched {
                prop_assert!(now_s - last_accept[k] >= cfg.min_dwell_s,
                    "tick {i}: stream {k} re-switched {}s after its last switch (dwell {})",
                    now_s - last_accept[k], cfg.min_dwell_s);
                last_accept[k] = now_s;
            }
            // Adoption structure: candidate plans pass through untouched,
            // placements move only for accepted switches.
            prop_assert_eq!(&d.adopted.plan_idx, &candidate.plan_idx);
            for k in 0..streams {
                let expect = if d.switched.contains(&k) {
                    candidate.placement[k]
                } else {
                    warm.placement[k]
                };
                prop_assert_eq!(d.adopted.placement[k], expect, "tick {} stream {}", i, k);
            }
            // Every proposed switch lands in exactly one bucket.
            let proposed = (0..streams)
                .filter(|&k| candidate.placement[k] != warm.placement[k])
                .count();
            prop_assert_eq!(
                proposed,
                d.switched.len() + d.rejected_window + d.rejected_dwell
                    + d.rejected_margin + d.rejected_cap,
                "tick {} accounting", i
            );
            warm = d.adopted;
        }
    }

    /// Hysteresis margin is monotone: from identical governor state and
    /// identical inputs, raising the margin can only shrink the accepted
    /// set — switched(hi) ⊆ switched(lo) — and move the difference into
    /// margin rejections.
    #[test]
    fn governor_margin_is_monotone(
        cfg in cfg_strategy(),
        streams in 1usize..MAX_STREAMS + 1,
        servers in 2usize..5,
        script in script_strategy(),
        extra_margin in 0.0f64..0.05,
        cand_place in prop::collection::vec(0usize..64, MAX_STREAMS),
        cand_lat in prop::collection::vec(1e-3f64..0.2, MAX_STREAMS),
    ) {
        let mut lo = SwitchGovernor::new(cfg, streams);
        for (inc_lat, _, _) in &script {
            lo.observe(&eval_with_latencies(inc_lat[..streams].to_vec()));
        }
        let mut hi = lo.clone();
        hi.cfg.hysteresis_margin_s += extra_margin;

        let warm = Assignment {
            plan_idx: vec![0; streams],
            placement: vec![0; streams],
        };
        let candidate = Assignment {
            plan_idx: vec![0; streams],
            placement: cand_place[..streams].iter().map(|p| p % servers).collect(),
        };
        let now_s = 100.0;
        let d_lo = lo.govern(now_s, &warm, &candidate, &cand_lat[..streams]);
        let d_hi = hi.govern(now_s, &warm, &candidate, &cand_lat[..streams]);
        for k in &d_hi.switched {
            prop_assert!(d_lo.switched.contains(k),
                "stream {k} switched under margin {} but not under {}",
                hi.cfg.hysteresis_margin_s, lo.cfg.hysteresis_margin_s);
        }
        prop_assert!(d_hi.rejected_margin >= d_lo.rejected_margin);
    }
}

/// The frozen replay scenario: 2 APs × 3 devices under a seeded churn
/// trace, clock-free evaluation budgets so replay is exact.
fn replay_setup() -> (ScenarioConfig, ServiceConfig, ChurnTrace, f64) {
    let scenario = ScenarioConfig {
        num_aps: 2,
        devices_per_ap: 3,
        arrival_rate_hz: 3.0,
        seed: 7,
        ..ScenarioConfig::default()
    };
    let cfg = ServiceConfig {
        optimizer: OptimizerConfig {
            rounds: 2,
            gibbs_iters: 20,
            ..OptimizerConfig::default()
        },
        replan_budget: Budget::evals(20_000),
        tick_s: 2.0,
        ..ServiceConfig::default()
    };
    let horizon_s = 24.0;
    let p = scenario.build();
    let trace = ChurnProfile {
        seed: 99,
        ..ChurnProfile::default()
    }
    .plan(
        p.cluster.devices.len(),
        p.cluster.aps.len(),
        p.cluster.servers.len(),
        p.streams.len(),
        horizon_s,
    );
    (scenario, cfg, trace, horizon_s)
}

/// Kill-and-restart mid-trace reproduces the uninterrupted run's final
/// checkpoint bit-for-bit, and the pinned summary of that run never
/// moves silently.
#[test]
fn crash_restore_replay_is_bit_identical_and_pinned() {
    let (scenario, cfg, trace, horizon_s) = replay_setup();

    // The run that never stops.
    let mut uninterrupted =
        PlanningService::new(scenario.build(), cfg.clone()).expect("scenario validates");
    let report = uninterrupted.drive_trace(&trace, horizon_s);
    let final_ckpt = uninterrupted.checkpoint_text();

    // The run that crashes at half-horizon and restores from its last
    // persisted checkpoint (WAL discipline: checkpoint, then next batch).
    let mut crashed =
        PlanningService::new(scenario.build(), cfg.clone()).expect("scenario validates");
    crashed.drive_trace(&trace, horizon_s / 2.0);
    let mid_ckpt = crashed.checkpoint_text();
    drop(crashed);
    let mut restored = PlanningService::restore(scenario.build(), cfg, &mid_ckpt)
        .expect("own checkpoint restores");
    restored.drive_trace(&trace, horizon_s);

    assert_eq!(
        restored.checkpoint_text(),
        final_ckpt,
        "restored replay diverged from the uninterrupted run"
    );

    // Golden pin on the uninterrupted run (format + trajectory). If a
    // legitimate planner change moves these, re-pin consciously — the
    // point is they never move *silently*.
    assert_eq!(
        final_ckpt.lines().next(),
        Some("scalpel-serve-checkpoint v1"),
        "checkpoint header changed — that is a format break"
    );
    let keys: Vec<&str> = final_ckpt
        .lines()
        .skip(1)
        .map(|l| l.split_whitespace().next().unwrap_or(""))
        .filter(|k| *k != "win")
        .collect();
    assert_eq!(
        keys,
        vec![
            "tick",
            "now",
            "cursor",
            "cursor_s",
            "dirty",
            "failures",
            "backoff",
            "degraded",
            "rejected_batches",
            "total_replans",
            "total_switches",
            "total_plan_changes",
            "remap_misses",
            "plan",
            "place",
            "link",
            "cap",
            "load",
            "up",
            "dwell",
            "end",
        ],
        "checkpoint key set changed — that is a format break"
    );
    let status = report.final_status().expect("non-empty drive").clone();
    let summary = (
        status.tick,
        status.total_replans,
        status.events_consumed,
        status.rejected_batches,
        status.degraded,
    );
    println!("golden service summary: {summary:?}");
    assert_eq!(
        summary,
        (12, 12, 151, 0, false),
        "golden service summary moved — re-pin only if the change is intentional"
    );
}

/// Restoring from the mid-trace checkpoint is exact even when the crash
/// lands between debounce and replan (`dirty > 0` in the checkpoint):
/// crash one tick later and the replay still converges to the same
/// final state.
#[test]
fn crash_point_does_not_matter() {
    let (scenario, cfg, trace, horizon_s) = replay_setup();
    let mut uninterrupted =
        PlanningService::new(scenario.build(), cfg.clone()).expect("scenario validates");
    uninterrupted.drive_trace(&trace, horizon_s);
    let final_ckpt = uninterrupted.checkpoint_text();

    for crash_at in [cfg.tick_s * 2.0, cfg.tick_s * 5.0, cfg.tick_s * 9.0] {
        let mut crashed =
            PlanningService::new(scenario.build(), cfg.clone()).expect("scenario validates");
        crashed.drive_trace(&trace, crash_at);
        let ckpt = crashed.checkpoint_text();
        let mut restored = PlanningService::restore(scenario.build(), cfg.clone(), &ckpt)
            .expect("own checkpoint restores");
        restored.drive_trace(&trace, horizon_s);
        assert_eq!(
            restored.checkpoint_text(),
            final_ckpt,
            "replay diverged when crashing at t={crash_at}"
        );
    }
}
