//! Structural invariants of the sharded optimizer (DESIGN.md §2.12).
//!
//! Partition soundness (coverage, disjointness, cap), bounded
//! reconciliation, bitwise determinism, and rayon thread-count
//! invariance of the reconciled result.

use proptest::prelude::*;
use scalpel::core::config::{ScenarioConfig, ServerMix};
use scalpel::core::evaluator::Evaluator;
use scalpel::core::online::OnlineController;
use scalpel::core::optimizer::{Budget, OptimizerConfig};
use scalpel::core::runner;
use scalpel::core::shard::{self, Reachability, ShardConfig};
use scalpel::core::validate;

fn quick_opt() -> OptimizerConfig {
    OptimizerConfig {
        rounds: 2,
        gibbs_iters: 20,
        ..OptimizerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every stream lands in exactly one shard, the union covers the
    /// problem, and (with servers >= APs, which the generator guarantees)
    /// no shard exceeds `max_streams`.
    #[test]
    fn partition_is_sound(
        num_aps in 2usize..7,
        devices_per_ap in 1usize..6,
        extra_servers in 0usize..5,
        cap_slack in 0usize..12,
    ) {
        let problem = ScenarioConfig {
            num_aps,
            devices_per_ap,
            arrival_rate_hz: 4.0,
            servers: ServerMix::Synthetic {
                count: num_aps + extra_servers,
                mean_fps: 60.0,
                cv: 0.25,
            },
            ..ScenarioConfig::default()
        }
        .build();
        // The cap must admit the largest AP group; anything above that is
        // a legal knob (bisection keeps servers >= APs per side, so the
        // cap binds strictly here).
        let cfg = ShardConfig {
            max_streams: devices_per_ap + cap_slack,
            opt: quick_opt(),
            ..ShardConfig::default()
        };
        let plan = shard::partition(&problem, &cfg).expect("generator keeps config valid");

        let n = problem.streams.len();
        let mut stream_owner = vec![0usize; n];
        let mut ap_owner = vec![0usize; problem.cluster.aps.len()];
        let mut server_owner = vec![0usize; problem.cluster.servers.len()];
        for s in &plan.shards {
            prop_assert!(
                s.streams.len() <= cfg.max_streams,
                "shard with {} streams exceeds cap {}",
                s.streams.len(),
                cfg.max_streams
            );
            prop_assert!(s.streams.windows(2).all(|w| w[0] < w[1]), "streams not ascending");
            prop_assert!(s.aps.windows(2).all(|w| w[0] < w[1]), "aps not ascending");
            prop_assert!(s.servers.windows(2).all(|w| w[0] < w[1]), "servers not ascending");
            for &k in &s.streams {
                stream_owner[k] += 1;
            }
            for &a in &s.aps {
                ap_owner[a] += 1;
            }
            for &j in &s.servers {
                server_owner[j] += 1;
            }
        }
        prop_assert!(
            stream_owner.iter().all(|&c| c == 1),
            "stream coverage broken: {:?}",
            stream_owner
        );
        prop_assert!(ap_owner.iter().all(|&c| c == 1), "AP coverage broken");
        prop_assert!(server_owner.iter().all(|&c| c <= 1), "server claimed twice");
    }

    /// Reconciliation terminates within its round cap, and the full
    /// sharded solve is bitwise deterministic under an unlimited budget.
    #[test]
    fn reconcile_bounded_and_solve_deterministic(
        num_aps in 2usize..5,
        devices_per_ap in 2usize..4,
        rate in 2.0f64..6.0,
    ) {
        let problem = ScenarioConfig {
            num_aps,
            devices_per_ap,
            arrival_rate_hz: rate,
            ..ScenarioConfig::default()
        }
        .build();
        let cfg = ShardConfig {
            max_streams: devices_per_ap, // force multiple shards
            opt: quick_opt(),
            ..ShardConfig::default()
        };
        let a = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED).expect("valid");
        prop_assert!(
            a.reconcile.rounds <= cfg.reconcile.max_rounds,
            "reconciliation ran {} rounds, cap {}",
            a.reconcile.rounds,
            cfg.reconcile.max_rounds
        );
        prop_assert!(!a.reconcile.cut, "unlimited budget must never cut the pass");
        prop_assert!(a.outcome.converged, "unlimited budget must converge");
        prop_assert!(a.outcome.solution.result.objective.is_finite());

        let b = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED).expect("valid");
        prop_assert_eq!(
            a.outcome.solution.result.objective.to_bits(),
            b.outcome.solution.result.objective.to_bits(),
            "objective not bitwise deterministic"
        );
        prop_assert_eq!(&a.outcome.solution.assignment, &b.outcome.solution.assignment);
        prop_assert_eq!(a.outcome.spent.evaluations, b.outcome.spent.evaluations);
        prop_assert_eq!(a.reconcile.moves, b.reconcile.moves);
        prop_assert_eq!(a.remap_misses, b.remap_misses);
    }
}

/// The reconciled result is invariant to the rayon thread count: shard
/// tasks are independent and stitched in shard order, so 1, 2, and 8
/// workers must produce bit-identical outcomes.
#[test]
fn thread_count_sweep_is_invariant() {
    let problem = ScenarioConfig {
        num_aps: 4,
        devices_per_ap: 3,
        arrival_rate_hz: 4.0,
        ..ScenarioConfig::default()
    }
    .build();
    let cfg = ShardConfig {
        max_streams: 3,
        opt: quick_opt(),
        ..ShardConfig::default()
    };
    let baseline = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED).expect("valid");
    assert!(baseline.plan.shards.len() > 1, "sweep needs real sharding");
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let out = pool
            .install(|| shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED))
            .expect("valid");
        assert_eq!(
            out.outcome.solution.result.objective.to_bits(),
            baseline.outcome.solution.result.objective.to_bits(),
            "objective differs at {threads} threads"
        );
        assert_eq!(
            out.outcome.solution.assignment, baseline.outcome.solution.assignment,
            "assignment differs at {threads} threads"
        );
        assert_eq!(
            out.outcome.spent.evaluations, baseline.outcome.spent.evaluations,
            "evaluation count differs at {threads} threads"
        );
    }
}

/// The two runtime entry points that wrap `solve_sharded` — the batch
/// runner and the online controller — produce the same reconciled
/// solution as the module entry and hand back usable follow-on results
/// (simulator reports, an adaptation report that never regresses past
/// the re-priced stale plan).
#[test]
fn runner_and_controller_wrappers_agree_with_module_entry() {
    let scenario = ScenarioConfig {
        num_aps: 4,
        devices_per_ap: 3,
        arrival_rate_hz: 4.0,
        ..ScenarioConfig::default()
    };
    let problem = scenario.build();
    let ev = Evaluator::new(&problem, None);
    let cfg = ShardConfig {
        max_streams: 3,
        opt: quick_opt(),
        ..ShardConfig::default()
    };

    // Batch runner: sharded solve + one simulation per seed.
    let (out, reports) = runner::run_sharded_seeds(
        &problem,
        &ev,
        &cfg,
        Budget::UNLIMITED,
        scenario.sim.clone(),
        &[1, 2],
    )
    .expect("valid scenario");
    assert_eq!(reports.len(), 2, "one simulator report per seed");
    let direct = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED).expect("valid");
    assert_eq!(
        out.outcome.solution.result.objective.to_bits(),
        direct.outcome.solution.result.objective.to_bits(),
        "runner wrapper must match the module entry bit-for-bit"
    );
    assert_eq!(
        out.outcome.solution.assignment,
        direct.outcome.solution.assignment
    );
    // The aggregated row carries the reconciler's closest-cut fallback
    // count instead of silently absorbing it.
    let row = runner::aggregate_sharded(scalpel::core::baselines::Method::Joint, &out, &reports);
    assert_eq!(row.remap_misses, out.remap_misses);

    // Online controller: warm-started sharded re-solve after a load change.
    let shifted = ScenarioConfig {
        arrival_rate_hz: 6.0,
        ..scenario.clone()
    }
    .build();
    let shifted_ev = Evaluator::new(&shifted, None);
    let mut ctl = OnlineController::bootstrap(&ev, quick_opt());
    let report = ctl
        .adapt_sharded(&ev, &shifted, &shifted_ev, &cfg, Budget::UNLIMITED)
        .expect("valid scenario");
    assert!(report.adapted_objective.is_finite());
    assert!(
        report.adapted_objective <= report.stale_objective + 1e-12,
        "warm incumbent is in the race, so adaptation can never lose to it: {} > {}",
        report.adapted_objective,
        report.stale_objective
    );
}

/// Ingest validation rejects shard configs the partitioner cannot honor.
#[test]
fn shard_config_validation_rejects_bad_inputs() {
    let problem = ScenarioConfig {
        num_aps: 2,
        devices_per_ap: 4,
        arrival_rate_hz: 4.0,
        ..ScenarioConfig::default()
    }
    .build();

    // Cap of zero.
    let zero = ShardConfig {
        max_streams: 0,
        ..ShardConfig::default()
    };
    assert!(validate::validate_shard_config(&problem, &zero).is_err());

    // Cap below the largest AP stream group (4 per AP here).
    let tight = ShardConfig {
        max_streams: 3,
        ..ShardConfig::default()
    };
    assert!(validate::validate_shard_config(&problem, &tight).is_err());

    // Reachability table with the wrong arity.
    let arity = ShardConfig {
        reach: Reachability::PerAp(vec![vec![0]]),
        ..ShardConfig::default()
    };
    assert!(validate::validate_shard_config(&problem, &arity).is_err());

    // Reachability row naming an unknown server.
    let unknown = ShardConfig {
        reach: Reachability::PerAp(vec![vec![0], vec![99]]),
        ..ShardConfig::default()
    };
    assert!(validate::validate_shard_config(&problem, &unknown).is_err());

    // An empty reachability row (an AP with nowhere to offload).
    let empty = ShardConfig {
        reach: Reachability::PerAp(vec![vec![0], vec![]]),
        ..ShardConfig::default()
    };
    assert!(validate::validate_shard_config(&problem, &empty).is_err());

    // And solve_sharded surfaces the same rejection instead of panicking.
    assert!(shard::solve_sharded(&problem, &zero, Budget::UNLIMITED).is_err());
}
