//! Sharded-vs-centralized parity (ISSUE: gap-to-centralized harness).
//!
//! Two regimes, mirroring DESIGN.md §2.12:
//!
//! * **Naturally partitioned** topologies (per-AP reachability islands):
//!   each shard extraction is exact, so under [`Budget::UNLIMITED`] every
//!   shard's solve must reproduce the centralized `solve` of that island
//!   **bit-for-bit** — same objective down to the last ulp.
//! * **Connected** topologies forced through the bisection fallback:
//!   sharding is lossy (the shard solver cannot see cross-shard load),
//!   so we assert the measured objective gap to the centralized solution
//!   stays within the documented bound and print it for the log.

use proptest::prelude::*;
use scalpel::core::config::{ScenarioConfig, ServerMix};
use scalpel::core::evaluator::Evaluator;
use scalpel::core::optimizer::{self, Budget, OptimizerConfig};
use scalpel::core::shard::{self, Reachability, ShardConfig};

/// Documented gap bound for bisected (connected) topologies: the sharded
/// incumbent may trail the centralized solution by at most this relative
/// margin (DESIGN.md §2.12; perfbench asserts the tighter 2% at N=512).
const GAP_BOUND: f64 = 0.05;

fn quick_opt() -> OptimizerConfig {
    OptimizerConfig {
        rounds: 2,
        gibbs_iters: 25,
        ..OptimizerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-AP islands: shard objectives are bit-identical to solving each
    /// extracted island standalone with the same config.
    #[test]
    fn natural_islands_match_centralized_bit_for_bit(
        num_aps in 2usize..5,
        devices_per_ap in 2usize..5,
        servers_per_ap in 1usize..3,
        rate in 2.0f64..6.0,
    ) {
        let scenario = ScenarioConfig {
            num_aps,
            devices_per_ap,
            arrival_rate_hz: rate,
            servers: ServerMix::Synthetic {
                count: num_aps * servers_per_ap,
                mean_fps: 60.0,
                cv: 0.3,
            },
            ..ScenarioConfig::default()
        };
        let problem = scenario.build();
        // AP a reaches exactly servers [a*spa, (a+1)*spa): disjoint islands.
        let lists: Vec<Vec<usize>> = (0..num_aps)
            .map(|a| (0..servers_per_ap).map(|j| a * servers_per_ap + j).collect())
            .collect();
        let cfg = ShardConfig {
            max_streams: problem.streams.len().max(1),
            reach: Reachability::PerAp(lists),
            opt: quick_opt(),
            ..ShardConfig::default()
        };
        let out = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED)
            .expect("valid sharded problem");
        prop_assert!(out.plan.natural, "disjoint reachability must shard naturally");
        prop_assert_eq!(out.plan.shards.len(), num_aps);

        for (i, s) in out.plan.shards.iter().enumerate() {
            if s.streams.is_empty() {
                continue;
            }
            let island = shard::extract(&problem, s);
            let island_ev = Evaluator::try_new(&island, cfg.menu.clone())
                .expect("island extraction is a valid problem");
            let solo = optimizer::solve(&island_ev, &cfg.opt);
            let sharded_obj = out.shards[i]
                .objective
                .expect("non-empty shard must report an objective");
            // Bit-for-bit: identical search on an identical problem.
            prop_assert_eq!(
                sharded_obj.to_bits(),
                solo.result.objective.to_bits(),
                "shard {} objective {} != standalone {}",
                i, sharded_obj, solo.result.objective
            );
            prop_assert_eq!(
                &out.shards[i].assignment,
                &Some(solo.assignment),
                "shard {} assignment diverged from standalone solve",
                i
            );
        }

        // The global incumbent never loses to the stitched recombination
        // of the island solves (pooled mean, weighted by shard size).
        let n: usize = out.plan.shards.iter().map(|s| s.streams.len()).sum();
        let stitched: f64 = out
            .shards
            .iter()
            .filter_map(|s| s.objective.map(|o| o * s.streams as f64))
            .sum::<f64>()
            / n.max(1) as f64;
        prop_assert!(
            out.outcome.solution.result.objective <= stitched * (1.0 + 1e-9) + 1e-12,
            "global {} worse than stitched {}",
            out.outcome.solution.result.objective,
            stitched
        );
    }

    /// Connected topologies forced through bisection: the gap to the
    /// centralized solution stays within the documented bound.
    #[test]
    fn bisected_gap_to_centralized_within_bound(
        num_aps in 2usize..5,
        devices_per_ap in 2usize..5,
        rate in 2.0f64..6.0,
    ) {
        let scenario = ScenarioConfig {
            num_aps,
            devices_per_ap,
            arrival_rate_hz: rate,
            servers: ServerMix::Synthetic {
                count: num_aps.max(4),
                mean_fps: 60.0,
                cv: 0.3,
            },
            ..ScenarioConfig::default()
        };
        let problem = scenario.build();
        let ev = Evaluator::new(&problem, None);
        let opt = quick_opt();
        let central = optimizer::solve(&ev, &opt);

        let cfg = ShardConfig {
            // Cap at one AP group: forces bisection of the single full
            // component into per-AP-sized shards.
            max_streams: devices_per_ap,
            reach: Reachability::Full,
            opt: opt.clone(),
            polish_gibbs: 50,
            ..ShardConfig::default()
        };
        let out = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED)
            .expect("valid sharded problem");
        prop_assert!(!out.plan.natural, "cap below component size must mark unnatural");
        prop_assert!(out.plan.shards.len() > 1, "bisection must split the component");

        let gap = (out.outcome.solution.result.objective - central.result.objective)
            / central.result.objective;
        println!(
            "gap-to-centralized: {:+.4}% (sharded {:.6} vs central {:.6}, {} shards, n={})",
            gap * 100.0,
            out.outcome.solution.result.objective,
            central.result.objective,
            out.plan.shards.len(),
            problem.streams.len()
        );
        prop_assert!(
            gap <= GAP_BOUND,
            "gap {:.4}% exceeds documented bound {:.1}%",
            gap * 100.0,
            GAP_BOUND * 100.0
        );
    }
}

/// Fleet-scale wall-clock acceptance: N = 10⁴ solves end-to-end in
/// under 60 s (release). Run on demand:
/// `cargo test -q --release --test shard_parity -- --ignored --nocapture`.
#[test]
#[ignore = "release-mode timing acceptance; run explicitly"]
fn fleet_10k_solves_under_60s() {
    let streams = 10_000usize;
    let num_aps = streams / 8;
    let problem = ScenarioConfig {
        num_aps,
        devices_per_ap: 8,
        servers: ServerMix::Synthetic {
            count: num_aps,
            mean_fps: 1e12,
            cv: 0.3,
        },
        ..ScenarioConfig::default()
    }
    .build();
    let cfg = ShardConfig {
        opt: OptimizerConfig {
            rounds: 1,
            gibbs_iters: 30,
            ..OptimizerConfig::default()
        },
        ..ShardConfig::default()
    };
    let t0 = std::time::Instant::now();
    let out = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED).expect("valid");
    let wall = t0.elapsed();
    println!(
        "N=10k sharded solve: {:.1}s, {} shards, {} evals, objective {:.6}, converged {}",
        wall.as_secs_f64(),
        out.plan.shards.len(),
        out.outcome.spent.evaluations,
        out.outcome.solution.result.objective,
        out.outcome.converged
    );
    assert!(
        wall.as_secs_f64() < 60.0,
        "N=10k sharded solve took {:.1}s (acceptance: < 60s)",
        wall.as_secs_f64()
    );
}

/// The facade entry (`optimizer::solve_sharded`) and the module entry are
/// the same function; determinism ties them bit-for-bit.
#[test]
fn facade_and_module_entry_agree() {
    let problem = ScenarioConfig {
        num_aps: 2,
        devices_per_ap: 3,
        arrival_rate_hz: 4.0,
        ..ScenarioConfig::default()
    }
    .build();
    let cfg = ShardConfig {
        max_streams: 3,
        opt: quick_opt(),
        ..ShardConfig::default()
    };
    let a = optimizer::solve_sharded(&problem, &cfg, Budget::UNLIMITED).expect("valid");
    let b = shard::solve_sharded(&problem, &cfg, Budget::UNLIMITED).expect("valid");
    assert_eq!(
        a.outcome.solution.result.objective.to_bits(),
        b.outcome.solution.result.objective.to_bits()
    );
    assert_eq!(a.outcome.solution.assignment, b.outcome.solution.assignment);
}
