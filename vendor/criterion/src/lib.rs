//! Offline stand-in for `criterion`.
//!
//! The real criterion (and its dependency tree) cannot be fetched in this
//! build environment. The workspace's benches only use the basic
//! group/`bench_function`/`iter` surface, so this crate keeps them
//! compiling and runnable: every benchmark body executes a small fixed
//! number of iterations and the median wall-clock time is printed. There
//! is no statistical analysis, warm-up, or HTML report — the benches act
//! as smoke tests plus a coarse timing signal until the real harness can
//! be restored (swap the path dependency back; no call-site changes).

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` runs and times the body.
pub struct Bencher {
    iters: u32,
    median_s: f64,
}

impl Bencher {
    /// Run `body` a few times and record the median duration. Returns `()`
    /// like the real criterion, so bench closures can end with `b.iter(..)`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut body: F) {
        let mut samples: Vec<f64> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                std_black_box(body());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        self.median_s = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub always runs a fixed iteration
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// End the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        self.run_one(&full, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            iters: 3,
            median_s: 0.0,
        };
        f(&mut b);
        println!(
            "bench {name}: {:.3} ms (stub harness, median of {} iters)",
            b.median_s * 1e3,
            b.iters
        );
    }
}

/// Collect benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body_and_records_time() {
        let mut b = Bencher {
            iters: 3,
            median_s: 0.0,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 3);
        assert!(b.median_s >= 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 40).to_string(), "solve/40");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
