//! Offline mini-proptest.
//!
//! The real `proptest` crate cannot be fetched in this build environment,
//! so this crate implements the subset of its API the workspace's property
//! tests use:
//!
//! - [`strategy::Strategy`] with `prop_map` and `prop_flat_map`,
//!   implemented for numeric ranges, tuples (up to 6),
//!   [`strategy::Just`], and [`collection::vec`];
//! - the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute);
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! - [`prop_oneof!`] with optional `weight =>` prefixes (no shrinking
//!   bias, just weighted selection);
//! - `any::<T>()` for primitive integers and `bool`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** On failure the harness prints the case index and the
//!   generated inputs (`Debug`), then re-raises the panic.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   function name, so runs are bit-reproducible — there is no
//!   `PROPTEST_CASES`/persistence machinery and no flakiness.

pub mod test_runner {
    //! Deterministic case runner state: config + RNG.

    /// How many cases each property runs (the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// SplitMix64 finalizer (same mixer the simulator's RNG uses).
    fn splitmix64(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic seed for a property from its function name.
    pub fn seed_from_name(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms (unlike DefaultHasher's
        // documented-unstable algorithm choice).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The per-case random generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for `case` of the property seeded with `seed`.
        pub fn new(seed: u64, case: u64) -> Self {
            Self {
                state: splitmix64(seed ^ splitmix64(case.wrapping_add(1))),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(self.state)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }

        /// Uniform `u64` in `[lo, hi)`; `hi > lo`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(hi > lo, "empty range");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        /// Derive a second strategy from each generated value and draw
        /// from it — e.g. a length first, then a vector of that length.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice among boxed strategies of one value type — the
    /// engine behind [`crate::prop_oneof!`]. Unlike real proptest there
    /// is no per-arm shrinking; an arm is picked by weight and asked to
    /// generate.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union over `arms`; every weight must be positive.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(arms.iter().all(|(w, _)| *w > 0), "zero-weight arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.range_u64(0, self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! tuple_strategy {
        ($($s:ident / $v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Lengths a generated `Vec` may take: `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating a `Vec` of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert inside a property (plain `assert!`; failures are reported with
/// the generated inputs by the [`proptest!`] harness).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or uniform, when the `weight =>` prefixes are omitted)
/// choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {{
        // The annotated binding drives `Value = _` inference; each boxed
        // arm coerces to the trait object at its element position.
        let __arms: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        )> = ::std::vec![
            $( ($weight as u32, ::std::boxed::Box::new($strat)) ),+
        ];
        $crate::strategy::Union::new(__arms)
    }};
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::prop_oneof![ $( 1 => $strat ),+ ]
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr);
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __seed = $crate::test_runner::seed_from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::new(__seed, __case as u64);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body }),
                    );
                    if let Err(panic) = __outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        use crate::test_runner::{seed_from_name, TestRng};
        let mut a = TestRng::new(seed_from_name("x"), 0);
        let mut b = TestRng::new(seed_from_name("x"), 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::new(seed_from_name("y"), 0);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 3usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (1u64..10, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f),
        ) {
            prop_assert!((1.0..11.0).contains(&pair));
        }

        #[test]
        fn flat_map_threads_the_outer_draw(
            v in (2usize..6).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n..n + 1)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_only_picks_listed_arms(
            x in prop_oneof![
                3 => Just(1.0f64),
                1 => 10.0f64..11.0,
            ],
        ) {
            prop_assert!(x == 1.0 || (10.0..11.0).contains(&x));
        }
    }
}
