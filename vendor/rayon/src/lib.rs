//! Offline stand-in for `rayon`.
//!
//! Provides exactly the `par_iter()` surface the workspace uses, executed
//! sequentially. Sequential execution is a correctness-preserving (and
//! fully deterministic) substitute: all call sites are independent
//! map/collect pipelines with no shared mutable state. When the real rayon
//! becomes available, switching the path dependency back restores
//! parallelism without touching call sites.

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    /// Sequential substitute for rayon's `IntoParallelRefIterator`:
    /// `par_iter()` on slices and vectors yields a plain slice iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by the iterator.
        type Item: 'data;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate (sequentially) over shared references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

/// Sequential stand-in for rayon's thread-pool builder. The thread count
/// is accepted (so call sites and tests can sweep it) but execution stays
/// sequential — which makes "result is thread-count-invariant" trivially
/// true here and a real assertion once the path dependency switches back
/// to upstream rayon.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirrored from upstream; the sequential builder never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `num_threads` workers (recorded; execution is sequential).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool. Never fails in the sequential stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Sequential stand-in for `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool (directly, on the current thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The requested worker count (0 = automatic), for diagnostics.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let s: &[i32] = &v;
        assert_eq!(s.par_iter().sum::<i32>(), 6);
    }

    #[test]
    fn thread_pool_installs_and_reports_threads() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 8);
        let v = vec![1, 2, 3];
        let sum: i32 = pool.install(|| v.par_iter().sum());
        assert_eq!(sum, 6);
        // Automatic thread count still reports at least one worker.
        let auto = super::ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.current_num_threads() >= 1);
    }
}
