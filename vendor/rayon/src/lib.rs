//! Offline stand-in for `rayon` — now with real data-parallel execution.
//!
//! Provides exactly the `par_iter().map(..).collect()` surface the
//! workspace uses, executed on a lazily spawned persistent worker pool.
//! Earlier revisions of this stub ran sequentially; this one actually
//! fans work out across OS threads while keeping the two properties the
//! workspace's tests pin:
//!
//! * **Order preservation** — results land at the index of the item that
//!   produced them, so for pure closures the collected output is
//!   bit-identical to the sequential map regardless of thread count or
//!   scheduling (asserted by `tests/shard_invariants.rs`'s 1/2/8-thread
//!   sweep).
//! * **Deterministic error selection** — collecting into
//!   `Result<Vec<_>, E>` runs every task and then reports the error of
//!   the *lowest-indexed* failing item, not whichever failed first in
//!   wall time.
//!
//! ## Execution model
//!
//! A global queue + `available_parallelism() - 1` parked workers are
//! created on first parallel dispatch. Each `collect()` splits its items
//! into contiguous chunks, erases the task lifetimes (sound because the
//! dispatching call blocks on a completion latch before returning, so
//! the borrowed data strictly outlives every task), pushes all but one
//! chunk to the queue, and processes the remainder inline. While waiting
//! on its latch the dispatcher *helps*: it pops and runs queued tasks —
//! possibly belonging to other in-flight collects — which makes nested
//! parallelism (shard solves calling `score_menu`) deadlock-free by
//! construction: every blocked party drains the queue instead of holding
//! a worker hostage.
//!
//! Panics inside a task are caught, forwarded through the latch, and
//! resumed on the dispatching thread after all sibling tasks finish.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `par_iter()` on slices and vectors yields a [`ParIter`] over shared
/// references, mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by the iterator.
    type Item: 'data + Sync;
    /// Iterate in parallel over shared references.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel sum of the referenced elements.
    pub fn sum<S>(self) -> S
    where
        T: Copy + Send,
        S: std::iter::Sum<T>,
    {
        let parts: Vec<T> = self.map(|&x| x).collect();
        parts.into_iter().sum()
    }
}

/// A mapped parallel iterator: the only adaptor the workspace consumes.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync> ParMap<'data, T, F> {
    /// Execute the map on the pool and gather results in item order.
    pub fn collect<C>(self) -> C
    where
        C: FromParMap<R>,
    {
        C::from_ordered(run_map(self.items, &self.f))
    }

    /// Parallel sum of the mapped results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        let parts: Vec<R> = self.collect();
        parts.into_iter().sum()
    }
}

/// Containers a [`ParMap`] can collect into (rayon's
/// `FromParallelIterator`, reduced to what the workspace uses).
pub trait FromParMap<R>: Sized {
    /// Build the container from results in item order.
    fn from_ordered(v: Vec<R>) -> Self;
}

impl<R> FromParMap<R> for Vec<R> {
    fn from_ordered(v: Vec<R>) -> Self {
        v
    }
}

impl<T, E> FromParMap<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(v: Vec<Result<T, E>>) -> Self {
        v.into_iter().collect()
    }
}

/// Run the map with order-preserving placement. Sequential when the
/// input is tiny or the effective thread count is 1; otherwise chunks
/// fan out across the pool.
fn run_map<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync>(
    items: &'data [T],
    f: &F,
) -> Vec<R> {
    let threads = effective_threads();
    let n = items.len();
    if n <= 1 || threads <= 1 {
        return items.iter().map(f).collect();
    }
    // More chunks than threads keeps the queue fed when per-item work is
    // uneven (shard solves, multi-seed sim runs); contiguous chunks keep
    // cache locality for fine-grained items (menu scoring).
    let chunks = (threads * 4).min(n);
    let chunk = n.div_ceil(chunks);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
        for (inp, slot) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            tasks.push(Box::new(move || {
                for (x, s) in inp.iter().zip(slot.iter_mut()) {
                    *s = Some(f(x));
                }
            }));
        }
        scope_run(tasks);
    }
    out.into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("latch waits for every task")))
        .collect()
}

// ---------------------------------------------------------------------
// The pool: global queue, parked workers, help-while-waiting latch.
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send>;

struct PoolQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl PoolQueue {
    fn push(&self, job: Job) {
        let mut q = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// Blocking pop for the worker loop.
    fn pop(&self) -> Job {
        let mut q = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = q.pop_front() {
                return job;
            }
            q = self.available.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The process-wide pool, spawned on first parallel dispatch.
fn pool() -> &'static PoolQueue {
    static POOL: OnceLock<&'static PoolQueue> = OnceLock::new();
    POOL.get_or_init(|| {
        let queue: &'static PoolQueue = Box::leak(Box::new(PoolQueue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        // The dispatching thread always works too, so `cores - 1`
        // workers saturate the machine without oversubscribing it.
        for _ in 1..default_threads() {
            std::thread::Builder::new()
                .name("rayon-stub-worker".into())
                .spawn(move || loop {
                    // A panicking job would otherwise kill the worker;
                    // the panic payload travels through the job's latch,
                    // so swallowing it here loses nothing.
                    let job = queue.pop();
                    let _ = catch_unwind(AssertUnwindSafe(job));
                })
                .expect("spawning pool worker");
        }
        queue
    })
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// Thread count requested by an enclosing [`ThreadPool::install`]
    /// (0 = automatic).
    static INSTALLED_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn effective_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed == 0 {
        default_threads()
    } else {
        installed
    }
}

/// Completion latch: counts outstanding tasks, stores the first panic.
struct Latch {
    remaining: AtomicUsize,
    state: Mutex<Option<Box<dyn Any + Send>>>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Self {
            remaining: AtomicUsize::new(count),
            state: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panic {
            let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            s.get_or_insert(p);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _s = self.state.lock().unwrap_or_else(|e| e.into_inner());
            self.done.notify_all();
        }
    }
}

/// Run `tasks` to completion, fanning all but one out to the pool and
/// helping drain the queue while waiting. Blocks until every task has
/// finished; resumes the first task panic (by completion order) on the
/// caller.
fn scope_run(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    if tasks.is_empty() {
        return;
    }
    let latch = Latch::new(tasks.len());
    let mut wrapped: Vec<Job> = Vec::with_capacity(tasks.len());
    for task in tasks {
        // SAFETY: this function does not return until `latch` reports
        // every task complete, so everything the task borrows outlives
        // its execution; the 'static lifetime is never observable.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let latch = Arc::clone(&latch);
        wrapped.push(Box::new(move || {
            let r = catch_unwind(AssertUnwindSafe(task));
            latch.complete(r.err());
        }));
    }
    let mine = wrapped.pop();
    let q = pool();
    for job in wrapped {
        q.push(job);
    }
    if let Some(job) = mine {
        job();
    }
    // Help-first wait: drain queued tasks (ours or another collect's)
    // until our latch opens. Helping is what makes nested dispatch
    // deadlock-free — a blocked dispatcher is always also a worker.
    while latch.remaining.load(Ordering::Acquire) > 0 {
        if let Some(job) = q.try_pop() {
            let _ = catch_unwind(AssertUnwindSafe(job));
            continue;
        }
        let s = latch.state.lock().unwrap_or_else(|e| e.into_inner());
        if latch.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        // Timed wait: a task of ours may be queued *behind* long tasks
        // of other collects, and new helpable work can arrive at any
        // time — re-poll the queue rather than parking indefinitely.
        let _ = latch
            .done
            .wait_timeout(s, Duration::from_millis(1))
            .unwrap_or_else(|e| e.into_inner());
    }
    let panic = latch.state.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = panic {
        resume_unwind(p);
    }
}

// ---------------------------------------------------------------------
// ThreadPool facade (used by the thread-count invariance tests).
// ---------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`. The built pool shares
/// the global workers; `num_threads` caps the *fan-out width* of
/// dispatches made under [`ThreadPool::install`] on the calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirrored from upstream; this builder never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `num_threads` workers (0 = automatic).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Handle capping parallel fan-out for code run under [`install`].
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing every parallel
    /// dispatch `op` makes on the calling thread (`num_threads == 1`
    /// forces fully sequential execution).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// The requested worker count (0 = automatic), for diagnostics.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_matches_iter() {
        let v: Vec<i32> = (0..1000).collect();
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        let expect: Vec<i32> = v.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, expect);
        let s: &[i32] = &v;
        assert_eq!(s.par_iter().sum::<i32>(), v.iter().sum::<i32>());
    }

    #[test]
    fn work_actually_fans_out_across_threads() {
        if super::default_threads() < 2 {
            return; // single-core runner: nothing to assert
        }
        let v: Vec<usize> = (0..256).collect();
        let ids: Vec<std::thread::ThreadId> = v
            .par_iter()
            .map(|_| {
                // Encourage interleaving so multiple threads participate.
                std::thread::sleep(std::time::Duration::from_micros(200));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() >= 2, "all work ran on one thread");
    }

    #[test]
    fn collect_into_result_reports_lowest_index_error() {
        let v: Vec<usize> = (0..100).collect();
        let r: Result<Vec<usize>, usize> = v
            .par_iter()
            .map(|&x| if x % 30 == 7 { Err(x) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err(7));
        let ok: Result<Vec<usize>, usize> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap(), v);
    }

    #[test]
    fn nested_dispatch_completes() {
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..64).collect();
                inner.par_iter().map(|&j| i * 1000 + j).sum::<usize>()
            })
            .collect();
        for (i, &s) in sums.iter().enumerate() {
            assert_eq!(s, (0..64).map(|j| i * 1000 + j).sum::<usize>());
        }
    }

    #[test]
    fn task_panic_propagates_after_siblings_finish() {
        let finished = AtomicUsize::new(0);
        let v: Vec<usize> = (0..32).collect();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<usize> = v
                .par_iter()
                .map(|&x| {
                    if x == 13 {
                        panic!("boom");
                    }
                    finished.fetch_add(1, Ordering::Relaxed);
                    x
                })
                .collect();
        }));
        assert!(r.is_err(), "panic must propagate to the dispatcher");
        assert!(finished.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn thread_pool_installs_and_reports_threads() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 8);
        let v = vec![1, 2, 3];
        let sum: i32 = pool.install(|| v.par_iter().sum());
        assert_eq!(sum, 6);
        // Automatic thread count still reports at least one worker.
        let auto = super::ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.current_num_threads() >= 1);
    }

    #[test]
    fn install_is_thread_count_invariant_for_pure_maps() {
        let v: Vec<u64> = (0..500).collect();
        let gold: Vec<u64> = v.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for threads in [1usize, 2, 8] {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> =
                pool.install(|| v.par_iter().map(|x| x.wrapping_mul(2654435761)).collect());
            assert_eq!(got, gold, "thread count {threads} changed results");
        }
    }
}
