//! Offline stand-in for `rayon`.
//!
//! Provides exactly the `par_iter()` surface the workspace uses, executed
//! sequentially. Sequential execution is a correctness-preserving (and
//! fully deterministic) substitute: all call sites are independent
//! map/collect pipelines with no shared mutable state. When the real rayon
//! becomes available, switching the path dependency back restores
//! parallelism without touching call sites.

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    /// Sequential substitute for rayon's `IntoParallelRefIterator`:
    /// `par_iter()` on slices and vectors yields a plain slice iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by the iterator.
        type Item: 'data;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate (sequentially) over shared references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let s: &[i32] = &v;
        assert_eq!(s.par_iter().sum::<i32>(), 6);
    }
}
