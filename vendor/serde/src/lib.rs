//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `serde` cannot be fetched. The workspace uses serde purely
//! as *annotation* (`#[derive(Serialize, Deserialize)]` on config and
//! report types); no code path serializes anything. This crate provides
//! the two trait names and re-exports the no-op derives so every
//! annotation site compiles unchanged. If real serialization is needed
//! later, swapping this path dependency back to crates.io serde is a
//! one-line change per manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// does not generate impls and nothing requires the bound at runtime).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de>: Sized {}
