//! No-op `Serialize`/`Deserialize` derives for offline builds.
//!
//! The real `serde_derive` is unavailable in the build environment (no
//! network, no vendored registry). The workspace only *annotates* types
//! with these derives — nothing is serialized at runtime — so expanding to
//! an empty token stream is sufficient and keeps every annotation site
//! untouched. `#[serde(...)]` field/container attributes are declared as
//! helper attributes so they parse and are discarded.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
